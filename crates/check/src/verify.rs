//! Static verifier for DSL task programs.
//!
//! The verifier interprets the *synchronization skeleton* of a task set —
//! barriers, locks, events — with vector clocks, and checks every memory
//! access against the happens-before order and the declared layout. It
//! never simulates the machine: programs are walked exactly once per task
//! by a cooperative scheduler, so checking is linear in program size and
//! independent of machine configuration.
//!
//! What this buys for the reproduction: the paper's A-stream safety
//! argument (§3.2) assumes the underlying application is *properly
//! synchronized* — the A-stream may run ahead precisely because every
//! shared communication is ordered by explicit synchronization that the
//! slipstream runtime intercepts. A workload with a latent data race or a
//! sync-discipline bug would silently invalidate slipstream results, so
//! every generated program is linted here before it is trusted in a
//! figure.

use std::collections::VecDeque;

use slipstream_kernel::{Addr, FxHashMap};
use slipstream_prog::{InstanceId, Layout, Op, Program, RegionKind, Space};

use crate::diag::{Diagnostic, Rule};
use crate::lockorder::LockOrder;
use crate::lockset::Lockset;

/// One task's program together with the identity it was built under.
pub struct TaskProgram {
    /// Task index (barrier/lock semantics are per task).
    pub task: usize,
    /// Stream instance the program was instantiated for (private-region
    /// ownership is per instance).
    pub inst: InstanceId,
    /// The program itself.
    pub prog: Program,
}

/// Vector clock: one logical-clock component per task.
type Vc = Vec<u64>;

fn vc_join(dst: &mut Vc, src: &Vc) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// Per-address access history for FastTrack-style race detection: the last
/// write as an epoch, and per-task read clocks.
struct Cell {
    /// `(task, clock, op_index)` of the most recent write.
    write: Option<(usize, u64, u64)>,
    /// Per-task `(clock, op_index)` of that task's most recent read
    /// (clock 0 = never; task clocks start at 1).
    reads: Vec<(u64, u64)>,
}

/// What a task is blocked on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Waiting to acquire a lock.
    Lock(u32),
    /// Waiting for an event post.
    Event(u32),
    /// Arrived at a barrier, waiting for the rest.
    Barrier(u32),
}

struct LockState {
    holder: Option<usize>,
    /// Vector clock of the last release (acquire joins it: release→acquire
    /// edge).
    release_vc: Vc,
}

struct TaskState {
    iter: slipstream_prog::ProgramIter,
    /// Index the *next* op fetched from the iterator will get.
    next_idx: u64,
    /// Op we are blocked on, with its index (re-attempted on resume).
    cur: Option<(Op, u64)>,
    blocked: Option<Blocked>,
    vc: Vc,
    /// Locks currently held: `(lock id, acquire op index)`.
    held: Vec<(u32, u64)>,
    /// Barrier generation: barriers this task has crossed. Accesses in
    /// different generations are ordered regardless of schedule, which
    /// the lockset pass uses to bound its windows.
    gen: u64,
    finished: bool,
}

/// Caps duplicate reporting: one SC001 per address, and a global ceiling so
/// a systematically racy program doesn't produce megabytes of output.
const MAX_RACE_REPORTS: usize = 50;

struct Verifier<'a> {
    layout: &'a Layout,
    tasks: Vec<TaskState>,
    insts: Vec<InstanceId>,
    locks: FxHashMap<u32, LockState>,
    /// Barrier id -> tasks currently waiting there.
    barriers: FxHashMap<u32, Vec<usize>>,
    /// Event id -> FIFO of post-time vector clocks (semaphore semantics).
    events: FxHashMap<u32, VecDeque<Vc>>,
    cells: FxHashMap<u64, Cell>,
    /// Addresses already reported as racy.
    raced: FxHashMap<u64, ()>,
    suppressed_races: u64,
    /// `(rule tag, task, key)` dedup for layout/space findings.
    seen: FxHashMap<(u8, usize, u64), ()>,
    /// Eraser-style lockset analysis (SC013), fed alongside the
    /// happens-before cells.
    lockset: Lockset,
    /// Acquired-while-holding graph (SC014), fed on every acquisition
    /// attempt.
    lockorder: LockOrder,
    diags: Vec<Diagnostic>,
}

impl<'a> Verifier<'a> {
    fn new(layout: &'a Layout, tasks: &[TaskProgram]) -> Verifier<'a> {
        let n = tasks.len();
        let states = tasks
            .iter()
            .enumerate()
            .map(|(t, tp)| {
                let mut vc = vec![0u64; n];
                vc[t] = 1;
                TaskState {
                    iter: tp.prog.iter(),
                    next_idx: 0,
                    cur: None,
                    blocked: None,
                    vc,
                    held: Vec::new(),
                    gen: 0,
                    finished: false,
                }
            })
            .collect();
        Verifier {
            layout,
            tasks: states,
            insts: tasks.iter().map(|tp| tp.inst).collect(),
            locks: FxHashMap::default(),
            barriers: FxHashMap::default(),
            events: FxHashMap::default(),
            cells: FxHashMap::default(),
            raced: FxHashMap::default(),
            suppressed_races: 0,
            seen: FxHashMap::default(),
            lockset: Lockset::default(),
            lockorder: LockOrder::default(),
            diags: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Diagnostic> {
        let n = self.tasks.len();
        loop {
            let mut progress = false;
            for t in 0..n {
                progress |= self.run_task(t);
            }
            if self.tasks.iter().all(|s| s.finished) {
                break;
            }
            if !progress {
                self.report_stall();
                break;
            }
        }
        self.finish();
        self.diags
    }

    /// Runs task `t` until it blocks or finishes. Returns whether any op
    /// executed.
    fn run_task(&mut self, t: usize) -> bool {
        if self.tasks[t].finished {
            return false;
        }
        let mut progress = false;
        loop {
            // A barrier waiter resumes only when the release clears this.
            if matches!(self.tasks[t].blocked, Some(Blocked::Barrier(_))) {
                return progress;
            }
            let (op, idx) = match self.tasks[t].cur.take() {
                Some(c) => c,
                None => {
                    let s = &mut self.tasks[t];
                    match s.iter.next() {
                        Some(op) => {
                            let idx = s.next_idx;
                            s.next_idx += 1;
                            (op, idx)
                        }
                        None => {
                            s.finished = true;
                            s.blocked = None;
                            let held = std::mem::take(&mut s.held);
                            for (l, acq) in held {
                                self.diags.push(
                                    Diagnostic::error(
                                        Rule::LeakedLock,
                                        format!("task ends holding lock {l} (acquired at op {acq})"),
                                    )
                                    .at_task(t)
                                    .at_op(acq),
                                );
                            }
                            return progress;
                        }
                    }
                }
            };
            if self.exec(t, op, idx) {
                self.tasks[t].blocked = None;
                progress = true;
            } else {
                self.tasks[t].cur = Some((op, idx));
                return progress;
            }
        }
    }

    /// Executes one op for task `t`. Returns `false` when the task blocks
    /// (the op will be re-attempted).
    fn exec(&mut self, t: usize, op: Op, idx: u64) -> bool {
        match op {
            Op::Compute(_) | Op::DivergeInA(_) | Op::Input => true,
            Op::Load { addr, space } => {
                if self.check_space(t, self.insts[t], addr, space, idx) {
                    self.on_read(t, addr, idx);
                    self.feed_lockset(t, addr, false, idx);
                }
                true
            }
            Op::Store { addr, space } => {
                if self.check_space(t, self.insts[t], addr, space, idx) {
                    self.on_write(t, addr, idx);
                    self.feed_lockset(t, addr, true, idx);
                }
                true
            }
            Op::Lock(l) => {
                // Record the acquired-while-holding edge before the grant
                // decision: a blocked attempt is still an ordering
                // commitment (and the very ingredient of a deadlock).
                // Re-attempts after blocking are deduplicated inside.
                let held: Vec<u32> = self.tasks[t].held.iter().map(|&(id, _)| id).collect();
                self.lockorder.acquire(t, &held, l.0, idx);
                let st = self.locks.entry(l.0).or_insert_with(|| LockState {
                    holder: None,
                    release_vc: vec![0; self.tasks.len()],
                });
                if st.holder.is_some() {
                    self.tasks[t].blocked = Some(Blocked::Lock(l.0));
                    return false;
                }
                st.holder = Some(t);
                vc_join(&mut self.tasks[t].vc, &st.release_vc);
                self.tasks[t].held.push((l.0, idx));
                true
            }
            Op::Unlock(l) => {
                let pos = self.tasks[t].held.iter().position(|&(id, _)| id == l.0);
                match pos {
                    Some(p) => {
                        self.tasks[t].held.remove(p);
                        let st = self.locks.get_mut(&l.0).expect("held lock has state");
                        st.holder = None;
                        st.release_vc = self.tasks[t].vc.clone();
                        self.tasks[t].vc[t] += 1;
                    }
                    None => {
                        let holder = self
                            .locks
                            .get(&l.0)
                            .and_then(|s| s.holder)
                            .map(|h| format!(" (held by task {h})"))
                            .unwrap_or_default();
                        self.diags.push(
                            Diagnostic::error(
                                Rule::UnlockWithoutLock,
                                format!("unlock of lock {} not held by this task{holder}", l.0),
                            )
                            .at_task(t)
                            .at_op(idx),
                        );
                    }
                }
                true
            }
            Op::Barrier(b) => {
                if !self.tasks[t].held.is_empty() {
                    let held: Vec<u32> =
                        self.tasks[t].held.iter().map(|&(id, _)| id).collect();
                    self.diags.push(
                        Diagnostic::error(
                            Rule::LockAcrossBarrier,
                            format!("task arrives at barrier {} holding locks {held:?}", b.0),
                        )
                        .at_task(t)
                        .at_op(idx),
                    );
                }
                let waiting = self.barriers.entry(b.0).or_default();
                if waiting.len() + 1 == self.tasks.len() {
                    // Last arrival: join everyone's clocks and release.
                    let mut joined = self.tasks[t].vc.clone();
                    for &w in waiting.iter() {
                        let wvc = self.tasks[w].vc.clone();
                        vc_join(&mut joined, &wvc);
                    }
                    let released = std::mem::take(waiting);
                    for &w in released.iter().chain(std::iter::once(&t)) {
                        self.tasks[w].vc = joined.clone();
                        self.tasks[w].vc[w] += 1;
                        self.tasks[w].gen += 1;
                    }
                    for w in released {
                        // The waiter's pending Barrier op is now satisfied.
                        self.tasks[w].cur = None;
                        self.tasks[w].blocked = None;
                    }
                    true
                } else {
                    waiting.push(t);
                    self.tasks[t].blocked = Some(Blocked::Barrier(b.0));
                    // Arrival is consumed; resume happens via the release
                    // path above, never by re-executing the op.
                    self.tasks[t].cur = Some((op, idx));
                    false
                }
            }
            Op::EventPost(e) => {
                let vc = self.tasks[t].vc.clone();
                self.events.entry(e.0).or_default().push_back(vc);
                self.tasks[t].vc[t] += 1;
                true
            }
            Op::EventWait(e) => {
                let q = self.events.entry(e.0).or_default();
                match q.pop_front() {
                    Some(post_vc) => {
                        vc_join(&mut self.tasks[t].vc, &post_vc);
                        true
                    }
                    None => {
                        self.tasks[t].blocked = Some(Blocked::Event(e.0));
                        false
                    }
                }
            }
        }
    }

    /// Validates the access's declared space against the layout. Returns
    /// whether the access is a well-formed shared access (and thus subject
    /// to race detection).
    fn check_space(&mut self, t: usize, inst: InstanceId, addr: Addr, space: Space, idx: u64) -> bool {
        check_space_common(
            self.layout,
            t,
            inst,
            addr,
            space,
            idx,
            &mut self.seen,
            &mut self.diags,
        )
    }

    /// Feeds one well-formed shared access to the lockset pass (SC013).
    fn feed_lockset(&mut self, t: usize, addr: Addr, is_write: bool, idx: u64) {
        let held: Vec<u32> = self.tasks[t].held.iter().map(|&(id, _)| id).collect();
        let gen = self.tasks[t].gen;
        self.lockset.access(t, addr.0, gen, &held, is_write, idx, &mut self.diags);
    }

    fn on_read(&mut self, t: usize, addr: Addr, idx: u64) {
        let n = self.tasks.len();
        let vc = self.tasks[t].vc.clone();
        let conflict = {
            let cell = self.cells.entry(addr.0).or_insert_with(|| Cell {
                write: None,
                reads: vec![(0, 0); n],
            });
            let w = cell.write.filter(|&(wt, wc, _)| wt != t && wc > vc[wt]);
            cell.reads[t] = (vc[t], idx);
            w
        };
        if let Some((wt, _, wop)) = conflict {
            self.report_race(addr, wt, wop, "store", t, idx, "load");
        }
    }

    fn on_write(&mut self, t: usize, addr: Addr, idx: u64) {
        let n = self.tasks.len();
        let vc = self.tasks[t].vc.clone();
        let (write_conflict, read_conflicts) = {
            let cell = self.cells.entry(addr.0).or_insert_with(|| Cell {
                write: None,
                reads: vec![(0, 0); n],
            });
            let w = cell.write.filter(|&(wt, wc, _)| wt != t && wc > vc[wt]);
            let reads: Vec<(usize, u64)> = cell
                .reads
                .iter()
                .enumerate()
                .filter(|&(u, &(c, _))| u != t && c > vc[u])
                .map(|(u, &(_, op))| (u, op))
                .collect();
            cell.write = Some((t, vc[t], idx));
            (w, reads)
        };
        if let Some((wt, _, wop)) = write_conflict {
            self.report_race(addr, wt, wop, "store", t, idx, "store");
        }
        for (u, uop) in read_conflicts {
            self.report_race(addr, u, uop, "load", t, idx, "store");
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report_race(
        &mut self,
        addr: Addr,
        t1: usize,
        op1: u64,
        kind1: &str,
        t2: usize,
        op2: u64,
        kind2: &str,
    ) {
        if self.raced.insert(addr.0, ()).is_some() {
            return;
        }
        if self.raced.len() > MAX_RACE_REPORTS {
            self.suppressed_races += 1;
            return;
        }
        let region = self
            .layout
            .region_of(addr)
            .map(|r| format!(" in region `{}`", r.name))
            .unwrap_or_default();
        self.diags.push(
            Diagnostic::error(
                Rule::SharedRace,
                format!(
                    "unordered shared accesses{region}: task {t1} {kind1} (op {op1}) \
                     vs task {t2} {kind2} (op {op2})"
                ),
            )
            .at_task(t2)
            .at_op(op2)
            .at_addr(addr.0),
        );
    }

    /// No runnable task and not everyone finished: classify each blocked
    /// task.
    fn report_stall(&mut self) {
        for t in 0..self.tasks.len() {
            if self.tasks[t].finished {
                continue;
            }
            let idx = self.tasks[t].cur.map(|(_, i)| i);
            let mut d = match self.tasks[t].blocked {
                Some(Blocked::Barrier(b)) => {
                    let absent: Vec<usize> = (0..self.tasks.len())
                        .filter(|&u| {
                            !matches!(self.tasks[u].blocked, Some(Blocked::Barrier(x)) if x == b)
                        })
                        .collect();
                    Diagnostic::error(
                        Rule::BarrierMismatch,
                        format!(
                            "task stuck at barrier {b}: tasks {absent:?} never arrive \
                             (barrier participation differs between tasks)"
                        ),
                    )
                }
                Some(Blocked::Lock(l)) => {
                    let holder = self.locks.get(&l).and_then(|s| s.holder);
                    Diagnostic::error(
                        Rule::SyncDeadlock,
                        match holder {
                            Some(h) if h == t => {
                                format!("task blocked acquiring lock {l} it already holds")
                            }
                            Some(h) => format!(
                                "task blocked on lock {l} held by task {h}, which never releases it"
                            ),
                            None => format!("task blocked on lock {l} (no holder; scheduler stall)"),
                        },
                    )
                }
                Some(Blocked::Event(e)) => Diagnostic::error(
                    Rule::UnbalancedEvents,
                    format!("event-wait on event {e} with no matching post"),
                ),
                None => Diagnostic::error(
                    Rule::SyncDeadlock,
                    "task unfinished but not blocked (scheduler stall)".to_string(),
                ),
            };
            d = d.at_task(t);
            if let Some(i) = idx {
                d = d.at_op(i);
            }
            self.diags.push(d);
        }
    }

    /// End-of-run checks that only make sense once execution stops.
    fn finish(&mut self) {
        if self.suppressed_races > 0 {
            self.diags.push(Diagnostic::error(
                Rule::SharedRace,
                format!(
                    "{} additional racy addresses suppressed (cap {MAX_RACE_REPORTS})",
                    self.suppressed_races
                ),
            ));
        }
        let mut leftover: Vec<(u32, usize)> = self
            .events
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&e, q)| (e, q.len()))
            .collect();
        leftover.sort_unstable();
        for (e, n) in leftover {
            self.diags.push(Diagnostic::warning(
                Rule::UnbalancedEvents,
                format!("{n} post(s) to event {e} never consumed by a wait"),
            ));
        }
        self.lockorder.finish(&mut self.diags);
        let raced: Vec<u64> = self.raced.keys().copied().collect();
        let mut lockset = std::mem::take(&mut self.lockset);
        lockset.finish(raced.into_iter(), &mut self.diags);
    }
}

/// Validates one access's declared space against the layout (shared logic
/// for the scheduler and the A-stream walk). Returns whether the access is
/// a well-formed shared access.
#[allow(clippy::too_many_arguments)]
fn check_space_common(
    layout: &Layout,
    t: usize,
    inst: InstanceId,
    addr: Addr,
    space: Space,
    idx: u64,
    seen: &mut FxHashMap<(u8, usize, u64), ()>,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let region = layout.region_of(addr);
    let mut once = |tag: u8, key: u64, d: Diagnostic| {
        if seen.insert((tag, t, key), ()).is_none() {
            diags.push(d);
        }
    };
    match (space, region) {
        (Space::Shared, Some(r)) => match r.kind {
            RegionKind::Shared | RegionKind::SharedOwned(_) => true,
            RegionKind::Private(owner) if owner == inst => {
                once(
                    0,
                    r.base.0,
                    Diagnostic::error(
                        Rule::SpaceMismatch,
                        format!("access declared Shared hits own private region `{}`", r.name),
                    )
                    .at_task(t)
                    .at_op(idx)
                    .at_addr(addr.0),
                );
                false
            }
            RegionKind::Private(owner) => {
                once(
                    1,
                    r.base.0,
                    Diagnostic::error(
                        Rule::PrivateIsolation,
                        format!(
                            "access declared Shared hits region `{}` private to instance {}",
                            r.name, owner.0
                        ),
                    )
                    .at_task(t)
                    .at_op(idx)
                    .at_addr(addr.0),
                );
                false
            }
        },
        (Space::Private, Some(r)) => {
            match r.kind {
                RegionKind::Private(owner) if owner == inst => {}
                RegionKind::Private(owner) => once(
                    2,
                    r.base.0,
                    Diagnostic::error(
                        Rule::PrivateIsolation,
                        format!(
                            "private access to region `{}` owned by instance {} \
                             (this stream is instance {})",
                            r.name, owner.0, inst.0
                        ),
                    )
                    .at_task(t)
                    .at_op(idx)
                    .at_addr(addr.0),
                ),
                RegionKind::Shared | RegionKind::SharedOwned(_) => once(
                    3,
                    r.base.0,
                    Diagnostic::error(
                        Rule::SpaceMismatch,
                        format!("access declared Private hits shared region `{}`", r.name),
                    )
                    .at_task(t)
                    .at_op(idx)
                    .at_addr(addr.0),
                ),
            }
            false
        }
        (_, None) => {
            once(
                4,
                addr.0,
                Diagnostic::error(
                    Rule::UnmappedAddress,
                    "access to an address outside every layout region".to_string(),
                )
                .at_task(t)
                .at_op(idx)
                .at_addr(addr.0),
            );
            false
        }
    }
}

/// Checks the layout itself: regions must be pairwise disjoint.
pub fn verify_layout(layout: &Layout) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut regions: Vec<_> = layout.regions().iter().collect();
    regions.sort_by_key(|r| r.base.0);
    for w in regions.windows(2) {
        if w[1].base < w[0].end() {
            diags.push(
                Diagnostic::error(
                    Rule::LayoutOverlap,
                    format!(
                        "regions `{}` [{:#x}..{:#x}) and `{}` [{:#x}..{:#x}) overlap",
                        w[0].name,
                        w[0].base.0,
                        w[0].end().0,
                        w[1].name,
                        w[1].base.0,
                        w[1].end().0
                    ),
                )
                .at_addr(w[1].base.0),
            );
        }
    }
    diags
}

/// Verifies a task set: layout consistency, space discipline, sync
/// discipline, and happens-before data-race freedom on shared data.
pub fn verify_tasks(layout: &Layout, tasks: &[TaskProgram]) -> Vec<Diagnostic> {
    let mut diags = verify_layout(layout);
    if !tasks.is_empty() {
        diags.extend(Verifier::new(layout, tasks).run());
    }
    diags
}

/// The elements of a program that must be identical between a task's
/// R-stream and A-stream instances: shared accesses, synchronization, and
/// `Input` ops. Private accesses and compute are excluded by design (the
/// A-stream owns distinct private regions and is a *reduced* copy).
#[derive(PartialEq, Eq, Debug)]
enum SkelItem {
    SharedLoad(u64),
    SharedStore(u64),
    Barrier(u32),
    Lock(u32),
    Unlock(u32),
    Post(u32),
    Wait(u32),
    Input,
}

fn skel_of(op: &Op) -> Option<SkelItem> {
    match *op {
        Op::Load { addr, space: Space::Shared } => Some(SkelItem::SharedLoad(addr.0)),
        Op::Store { addr, space: Space::Shared } => Some(SkelItem::SharedStore(addr.0)),
        Op::Barrier(b) => Some(SkelItem::Barrier(b.0)),
        Op::Lock(l) => Some(SkelItem::Lock(l.0)),
        Op::Unlock(l) => Some(SkelItem::Unlock(l.0)),
        Op::EventPost(e) => Some(SkelItem::Post(e.0)),
        Op::EventWait(e) => Some(SkelItem::Wait(e.0)),
        Op::Input => Some(SkelItem::Input),
        Op::Load { .. } | Op::Store { .. } | Op::Compute(_) | Op::DivergeInA(_) => None,
    }
}

/// Verifies a slipstream A-instance against its R-instance: the A program's
/// private accesses must stay inside the A instance's own regions, and its
/// shared-access + synchronization skeleton must be identical to the R
/// program's (shared addresses may depend on the task, never the
/// instance — the contract in [`slipstream_core::TaskBuilderFn`]).
pub fn verify_pair(layout: &Layout, r: &TaskProgram, a: &TaskProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen = FxHashMap::default();

    // Walk A fully (space checks for every access), collecting its skeleton
    // lazily; walk R for its skeleton only (R was already space-checked by
    // the scheduler pass).
    let mut a_iter = a.prog.iter();
    let mut a_idx = 0u64;
    let mut next_a = |seen: &mut FxHashMap<(u8, usize, u64), ()>,
                      diags: &mut Vec<Diagnostic>|
     -> Option<(SkelItem, u64)> {
        for op in a_iter.by_ref() {
            let idx = a_idx;
            a_idx += 1;
            if let Op::Load { addr, space } | Op::Store { addr, space } = op {
                check_space_common(layout, a.task, a.inst, addr, space, idx, seen, diags);
            }
            if let Some(item) = skel_of(&op) {
                return Some((item, idx));
            }
        }
        None
    };
    let mut r_skel = r.prog.iter().filter_map(|op| skel_of(&op));

    loop {
        let a_item = next_a(&mut seen, &mut diags);
        let r_item = r_skel.next();
        match (a_item, r_item) {
            (None, None) => break,
            (Some((ai, idx)), Some(ri)) => {
                if ai != ri {
                    diags.push(
                        Diagnostic::error(
                            Rule::InstanceDivergence,
                            format!(
                                "A-stream instance {} diverges from R-stream instance {}: \
                                 A has {ai:?} where R has {ri:?}",
                                a.inst.0, r.inst.0
                            ),
                        )
                        .at_task(a.task)
                        .at_op(idx),
                    );
                    break;
                }
            }
            (Some((ai, idx)), None) => {
                diags.push(
                    Diagnostic::error(
                        Rule::InstanceDivergence,
                        format!(
                            "A-stream instance {} has extra {ai:?} past the end of \
                             R-stream instance {}'s skeleton",
                            a.inst.0, r.inst.0
                        ),
                    )
                    .at_task(a.task)
                    .at_op(idx),
                );
                break;
            }
            (None, Some(ri)) => {
                diags.push(
                    Diagnostic::error(
                        Rule::InstanceDivergence,
                        format!(
                            "A-stream instance {} is missing {ri:?} present in \
                             R-stream instance {}",
                            a.inst.0, r.inst.0
                        ),
                    )
                    .at_task(a.task),
                );
                break;
            }
        }
    }
    diags
}
