//! Seeded-defect programs for validating the verifier itself.
//!
//! Each [`MutationCase`] is a small task set with exactly one discipline
//! violation planted in it, annotated with the rule that must fire. The
//! mutation tests and the `check --selftest` subcommand run every case and
//! assert the expected rule id is reported — so a verifier regression that
//! silently stops detecting a class of bugs fails loudly.

use slipstream_kernel::Addr;
use slipstream_prog::{BarrierId, EventId, InstanceId, Layout, LockId, ProgBuilder, RegionKind};

use crate::contract::{verify_contract, ContractItem, PatternContract};
use crate::diag::{Diagnostic, Rule, Severity};
use crate::verify::{verify_pair, verify_tasks, TaskProgram};

/// How a case is verified.
pub enum CaseKind {
    /// Run the full scheduler over `tasks` (conventional task set).
    TaskSet,
    /// Compare `tasks[0]` (R) against `tasks[1]` (A) as a slipstream pair.
    Pair,
    /// Check `tasks` against a declared pattern contract (SC015).
    Contract(PatternContract),
}

/// One seeded-defect program set.
pub struct MutationCase {
    /// Case name (stable, used in test output).
    pub name: &'static str,
    /// The rule that must fire with `Error` severity.
    pub expect: Rule,
    /// The layout the programs run against.
    pub layout: Layout,
    /// The task programs.
    pub tasks: Vec<TaskProgram>,
    /// How to verify.
    pub kind: CaseKind,
}

fn task(t: usize, inst: u32, prog: slipstream_prog::Program) -> TaskProgram {
    TaskProgram { task: t, inst: InstanceId(inst), prog }
}

/// Every seeded case, one per detectable defect class.
pub fn mutation_cases() -> Vec<MutationCase> {
    let mut cases = Vec::new();

    // SC006: task 0's unlock was dropped, so it ends holding the lock
    // (and task 1 starves on it, which additionally reports SC010).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 128);
        let mut t0 = ProgBuilder::new();
        t0.lock(LockId(0)).store_shared(x.at_byte(0)); // unlock dropped here
        let mut t1 = ProgBuilder::new();
        t1.lock(LockId(0)).store_shared(x.at_byte(64)).unlock(LockId(0));
        cases.push(MutationCase {
            name: "dropped-unlock",
            expect: Rule::LeakedLock,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC005: unlock of a lock that was never acquired.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.compute(4).unlock(LockId(7));
        let mut t1 = ProgBuilder::new();
        t1.compute(4);
        cases.push(MutationCase {
            name: "unlock-without-lock",
            expect: Rule::UnlockWithoutLock,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC003: task 1 skips the second barrier generation, stranding task 0.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.barrier(BarrierId(0)).compute(2).barrier(BarrierId(0));
        let mut t1 = ProgBuilder::new();
        t1.barrier(BarrierId(0)).compute(2); // second barrier skipped here
        cases.push(MutationCase {
            name: "skipped-barrier",
            expect: Rule::BarrierMismatch,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC002: task 1 reaches into task 0's private region.
    {
        let mut layout = Layout::new();
        let p0 = layout.private(InstanceId(0), "p0", 256);
        let p1 = layout.private(InstanceId(1), "p1", 256);
        let mut t0 = ProgBuilder::new();
        t0.store_private(p0.at_byte(0));
        let mut t1 = ProgBuilder::new();
        t1.store_private(p1.at_byte(0)).store_private(p0.at_byte(64)); // cross-task access
        cases.push(MutationCase {
            name: "cross-task-private",
            expect: Rule::PrivateIsolation,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC007: the producer's post was removed; the consumer waits forever.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.compute(8); // post(EventId(0)) removed here
        let mut t1 = ProgBuilder::new();
        t1.wait(EventId(0));
        cases.push(MutationCase {
            name: "removed-post",
            expect: Rule::UnbalancedEvents,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC001: both tasks store the same shared line with no ordering.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.store_shared(x.at_byte(0)).compute(2);
        let mut t1 = ProgBuilder::new();
        t1.compute(2).store_shared(x.at_byte(0));
        cases.push(MutationCase {
            name: "unsynchronized-stores",
            expect: Rule::SharedRace,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC004: both tasks arrive at the barrier holding a (distinct) lock.
    {
        let layout = Layout::new();
        let mk = |l: u32| {
            let mut b = ProgBuilder::new();
            b.lock(LockId(l)).barrier(BarrierId(0)).unlock(LockId(l));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "lock-across-barrier",
            expect: Rule::LockAcrossBarrier,
            layout,
            tasks: vec![task(0, 0, mk(0)), task(1, 1, mk(1))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC010: self-deadlock (re-acquiring a held, non-recursive lock).
    {
        let layout = Layout::new();
        let mk = || {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0)).lock(LockId(0)).unlock(LockId(0)).unlock(LockId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "relock-deadlock",
            expect: Rule::SyncDeadlock,
            layout,
            tasks: vec![task(0, 0, mk()), task(1, 1, mk())],
            kind: CaseKind::TaskSet,
        });
    }

    // SC009: an access declared Shared lands in the task's own private
    // region (space annotation drifted from the layout).
    {
        let mut layout = Layout::new();
        let p0 = layout.private(InstanceId(0), "p0", 128);
        let mut t0 = ProgBuilder::new();
        t0.load_shared(p0.at_byte(0));
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "space-mismatch",
            expect: Rule::SpaceMismatch,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC011: an access to an address no region contains.
    {
        let mut layout = Layout::new();
        layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.load_shared(Addr(1 << 40));
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "unmapped-address",
            expect: Rule::UnmappedAddress,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC012: the A-stream's shared addresses depend on the instance.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 256);
        let mk = |off: u64| {
            let mut b = ProgBuilder::new();
            b.load_shared(x.at_byte(off)).barrier(BarrierId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "instance-divergence",
            expect: Rule::InstanceDivergence,
            layout,
            tasks: vec![task(0, 0, mk(0)), task(0, 1, mk(64))],
            kind: CaseKind::Pair,
        });
    }

    // SC008: a second region inserted on top of an allocated one (the
    // public allocator can never produce this, so the case uses the raw
    // insertion API layout fault-injection uses).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 128);
        layout.insert_region_at("overlay", x.at_byte(64), 128, RegionKind::Shared);
        let mut t0 = ProgBuilder::new();
        t0.compute(1);
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "overlapping-regions",
            expect: Rule::LayoutOverlap,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC013: the consumer's lock was dropped. The event still orders the
    // two accesses, so the one schedule the happens-before pass explores
    // is race-free (no SC001) — only the schedule-independent lockset
    // analysis sees the broken discipline.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.lock(LockId(0)).store_shared(x.at_byte(0)).unlock(LockId(0)).post(EventId(0));
        let mut t1 = ProgBuilder::new();
        t1.wait(EventId(0)).store_shared(x.at_byte(0)); // lock dropped here
        cases.push(MutationCase {
            name: "inconsistent-lockset",
            expect: Rule::LocksetRace,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC014: the two tasks nest the same pair of locks in opposite
    // orders. The cooperative scheduler runs task 0's critical section to
    // completion before task 1 starts, so SC010's progress check never
    // observes the wedge — only the lock-order graph does.
    {
        let layout = Layout::new();
        let mk = |first: u32, second: u32| {
            let mut b = ProgBuilder::new();
            b.lock(LockId(first))
                .lock(LockId(second))
                .compute(4)
                .unlock(LockId(second))
                .unlock(LockId(first));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "lock-order-inversion",
            expect: Rule::LockOrderCycle,
            layout,
            tasks: vec![task(0, 0, mk(0, 1)), task(1, 1, mk(1, 0))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC015: the program acquires the migration lock half as often as its
    // declared pattern contract promises (a generator that silently lost
    // a round).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mk = || {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0)).load_shared(x.at_byte(0)).store_shared(x.at_byte(0)).unlock(LockId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "broken-pattern-contract",
            expect: Rule::PatternContract,
            layout,
            tasks: vec![task(0, 0, mk()), task(1, 1, mk())],
            kind: CaseKind::Contract(PatternContract {
                pattern: "migratory".to_string(),
                line_bytes: 64,
                items: vec![ContractItem::LockAcquires { lock: 0, total: 4 }],
            }),
        });
    }

    cases
}

/// Runs one case through the appropriate verifier entry point.
pub fn run_case(case: &MutationCase) -> Vec<Diagnostic> {
    match &case.kind {
        CaseKind::TaskSet => verify_tasks(&case.layout, &case.tasks),
        CaseKind::Pair => verify_pair(&case.layout, &case.tasks[0], &case.tasks[1]),
        CaseKind::Contract(c) => verify_contract(&case.tasks, c),
    }
}

/// Runs every case; returns a failure message per case whose expected rule
/// did not fire at `Error` severity (empty = verifier healthy).
pub fn selftest() -> Vec<String> {
    let mut failures = Vec::new();
    for case in mutation_cases() {
        let diags = run_case(&case);
        let hit = diags
            .iter()
            .any(|d| d.rule == case.expect && d.severity == Severity::Error);
        if !hit {
            let got: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
            failures.push(format!(
                "case `{}`: expected {} to fire, got {:?}",
                case.name,
                case.expect.id(),
                got
            ));
        }
    }
    failures
}
