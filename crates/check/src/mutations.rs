//! Seeded-defect programs for validating the verifier itself.
//!
//! Each [`MutationCase`] is a small task set with exactly one discipline
//! violation planted in it, annotated with the rule that must fire. The
//! mutation tests and the `check --selftest` subcommand run every case and
//! assert the expected rule id is reported — so a verifier regression that
//! silently stops detecting a class of bugs fails loudly.

use slipstream_kernel::Addr;
use slipstream_prog::{BarrierId, EventId, InstanceId, Layout, LockId, ProgBuilder, RegionKind};

use crate::analysis::{analyze_tasks, AnalysisConfig};
use crate::contract::{verify_contract, ContractItem, PatternContract};
use crate::diag::{Diagnostic, Rule, Severity};
use crate::verify::{verify_pair, verify_tasks, TaskProgram};

/// How a case is verified.
pub enum CaseKind {
    /// Run the full scheduler over `tasks` (conventional task set).
    TaskSet,
    /// Compare `tasks[0]` (R) against `tasks[1]` (A) as a slipstream pair.
    Pair,
    /// Check `tasks` against a declared pattern contract (SC015).
    Contract(PatternContract),
    /// Run the sharing analyzer over `tasks` (SP001..SP006) with the given
    /// configuration.
    Analysis(AnalysisConfig),
}

/// One seeded-defect program set.
pub struct MutationCase {
    /// Case name (stable, used in test output).
    pub name: &'static str,
    /// The rule that must fire with [`MutationCase::expect_severity`].
    pub expect: Rule,
    /// The severity the rule must fire with: `Error` for the `SC*`
    /// correctness rules, `Warning` for the `SP*` performance lints.
    pub expect_severity: Severity,
    /// The layout the programs run against.
    pub layout: Layout,
    /// The task programs.
    pub tasks: Vec<TaskProgram>,
    /// How to verify.
    pub kind: CaseKind,
}

fn task(t: usize, inst: u32, prog: slipstream_prog::Program) -> TaskProgram {
    TaskProgram { task: t, inst: InstanceId(inst), prog }
}

/// Every seeded case, one per detectable defect class.
pub fn mutation_cases() -> Vec<MutationCase> {
    let mut cases = Vec::new();

    // SC006: task 0's unlock was dropped, so it ends holding the lock
    // (and task 1 starves on it, which additionally reports SC010).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 128);
        let mut t0 = ProgBuilder::new();
        t0.lock(LockId(0)).store_shared(x.at_byte(0)); // unlock dropped here
        let mut t1 = ProgBuilder::new();
        t1.lock(LockId(0)).store_shared(x.at_byte(64)).unlock(LockId(0));
        cases.push(MutationCase {
            name: "dropped-unlock",
            expect_severity: Severity::Error,
            expect: Rule::LeakedLock,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC005: unlock of a lock that was never acquired.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.compute(4).unlock(LockId(7));
        let mut t1 = ProgBuilder::new();
        t1.compute(4);
        cases.push(MutationCase {
            name: "unlock-without-lock",
            expect_severity: Severity::Error,
            expect: Rule::UnlockWithoutLock,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC003: task 1 skips the second barrier generation, stranding task 0.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.barrier(BarrierId(0)).compute(2).barrier(BarrierId(0));
        let mut t1 = ProgBuilder::new();
        t1.barrier(BarrierId(0)).compute(2); // second barrier skipped here
        cases.push(MutationCase {
            name: "skipped-barrier",
            expect_severity: Severity::Error,
            expect: Rule::BarrierMismatch,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC002: task 1 reaches into task 0's private region.
    {
        let mut layout = Layout::new();
        let p0 = layout.private(InstanceId(0), "p0", 256);
        let p1 = layout.private(InstanceId(1), "p1", 256);
        let mut t0 = ProgBuilder::new();
        t0.store_private(p0.at_byte(0));
        let mut t1 = ProgBuilder::new();
        t1.store_private(p1.at_byte(0)).store_private(p0.at_byte(64)); // cross-task access
        cases.push(MutationCase {
            name: "cross-task-private",
            expect_severity: Severity::Error,
            expect: Rule::PrivateIsolation,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC007: the producer's post was removed; the consumer waits forever.
    {
        let layout = Layout::new();
        let mut t0 = ProgBuilder::new();
        t0.compute(8); // post(EventId(0)) removed here
        let mut t1 = ProgBuilder::new();
        t1.wait(EventId(0));
        cases.push(MutationCase {
            name: "removed-post",
            expect_severity: Severity::Error,
            expect: Rule::UnbalancedEvents,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC001: both tasks store the same shared line with no ordering.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.store_shared(x.at_byte(0)).compute(2);
        let mut t1 = ProgBuilder::new();
        t1.compute(2).store_shared(x.at_byte(0));
        cases.push(MutationCase {
            name: "unsynchronized-stores",
            expect_severity: Severity::Error,
            expect: Rule::SharedRace,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC004: both tasks arrive at the barrier holding a (distinct) lock.
    {
        let layout = Layout::new();
        let mk = |l: u32| {
            let mut b = ProgBuilder::new();
            b.lock(LockId(l)).barrier(BarrierId(0)).unlock(LockId(l));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "lock-across-barrier",
            expect_severity: Severity::Error,
            expect: Rule::LockAcrossBarrier,
            layout,
            tasks: vec![task(0, 0, mk(0)), task(1, 1, mk(1))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC010: self-deadlock (re-acquiring a held, non-recursive lock).
    {
        let layout = Layout::new();
        let mk = || {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0)).lock(LockId(0)).unlock(LockId(0)).unlock(LockId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "relock-deadlock",
            expect_severity: Severity::Error,
            expect: Rule::SyncDeadlock,
            layout,
            tasks: vec![task(0, 0, mk()), task(1, 1, mk())],
            kind: CaseKind::TaskSet,
        });
    }

    // SC009: an access declared Shared lands in the task's own private
    // region (space annotation drifted from the layout).
    {
        let mut layout = Layout::new();
        let p0 = layout.private(InstanceId(0), "p0", 128);
        let mut t0 = ProgBuilder::new();
        t0.load_shared(p0.at_byte(0));
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "space-mismatch",
            expect_severity: Severity::Error,
            expect: Rule::SpaceMismatch,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC011: an access to an address no region contains.
    {
        let mut layout = Layout::new();
        layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.load_shared(Addr(1 << 40));
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "unmapped-address",
            expect_severity: Severity::Error,
            expect: Rule::UnmappedAddress,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC012: the A-stream's shared addresses depend on the instance.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 256);
        let mk = |off: u64| {
            let mut b = ProgBuilder::new();
            b.load_shared(x.at_byte(off)).barrier(BarrierId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "instance-divergence",
            expect_severity: Severity::Error,
            expect: Rule::InstanceDivergence,
            layout,
            tasks: vec![task(0, 0, mk(0)), task(0, 1, mk(64))],
            kind: CaseKind::Pair,
        });
    }

    // SC008: a second region inserted on top of an allocated one (the
    // public allocator can never produce this, so the case uses the raw
    // insertion API layout fault-injection uses).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 128);
        layout.insert_region_at("overlay", x.at_byte(64), 128, RegionKind::Shared);
        let mut t0 = ProgBuilder::new();
        t0.compute(1);
        let mut t1 = ProgBuilder::new();
        t1.compute(1);
        cases.push(MutationCase {
            name: "overlapping-regions",
            expect_severity: Severity::Error,
            expect: Rule::LayoutOverlap,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC013: the consumer's lock was dropped. The event still orders the
    // two accesses, so the one schedule the happens-before pass explores
    // is race-free (no SC001) — only the schedule-independent lockset
    // analysis sees the broken discipline.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mut t0 = ProgBuilder::new();
        t0.lock(LockId(0)).store_shared(x.at_byte(0)).unlock(LockId(0)).post(EventId(0));
        let mut t1 = ProgBuilder::new();
        t1.wait(EventId(0)).store_shared(x.at_byte(0)); // lock dropped here
        cases.push(MutationCase {
            name: "inconsistent-lockset",
            expect_severity: Severity::Error,
            expect: Rule::LocksetRace,
            layout,
            tasks: vec![task(0, 0, t0.build("m")), task(1, 1, t1.build("m"))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC014: the two tasks nest the same pair of locks in opposite
    // orders. The cooperative scheduler runs task 0's critical section to
    // completion before task 1 starts, so SC010's progress check never
    // observes the wedge — only the lock-order graph does.
    {
        let layout = Layout::new();
        let mk = |first: u32, second: u32| {
            let mut b = ProgBuilder::new();
            b.lock(LockId(first))
                .lock(LockId(second))
                .compute(4)
                .unlock(LockId(second))
                .unlock(LockId(first));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "lock-order-inversion",
            expect_severity: Severity::Error,
            expect: Rule::LockOrderCycle,
            layout,
            tasks: vec![task(0, 0, mk(0, 1)), task(1, 1, mk(1, 0))],
            kind: CaseKind::TaskSet,
        });
    }

    // SC015: the program acquires the migration lock half as often as its
    // declared pattern contract promises (a generator that silently lost
    // a round).
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mk = || {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0)).load_shared(x.at_byte(0)).store_shared(x.at_byte(0)).unlock(LockId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "broken-pattern-contract",
            expect_severity: Severity::Error,
            expect: Rule::PatternContract,
            layout,
            tasks: vec![task(0, 0, mk()), task(1, 1, mk())],
            kind: CaseKind::Contract(PatternContract {
                pattern: "migratory".to_string(),
                line_bytes: 64,
                items: vec![ContractItem::LockAcquires { lock: 0, total: 4 }],
            }),
        });
    }

    // SP001: two tasks write distinct words of one line, each word
    // barrier-separated from the other task's reads — perfectly
    // synchronized (no SC001), but the line false-shares.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let mk = |word: u64| {
            let mut b = ProgBuilder::new();
            b.store_shared(x.at_byte(word * 8)).barrier(BarrierId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "false-shared-line",
            expect_severity: Severity::Warning,
            expect: Rule::FalseSharing,
            layout,
            tasks: vec![task(0, 0, mk(0)), task(1, 1, mk(1))],
            kind: CaseKind::Analysis(AnalysisConfig::default()),
        });
    }

    // SP002: a read-mostly table is updated by task 0 in the same phase
    // where tasks 1 and 2 are streaming reads through it.
    {
        let mut layout = Layout::new();
        let tbl = layout.shared("tbl", 4096);
        let writer = {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0)).store_shared(tbl.at_byte(0)).unlock(LockId(0));
            b.barrier(BarrierId(0));
            b.build("m")
        };
        let reader = |t: usize| {
            let mut b = ProgBuilder::new();
            for i in 0..4u64 {
                b.lock(LockId(0)).load_shared(tbl.at_byte(i * 64)).unlock(LockId(0));
            }
            b.barrier(BarrierId(0));
            task(t, t as u32, b.build("m"))
        };
        cases.push(MutationCase {
            name: "read-mostly-hot-write",
            expect_severity: Severity::Warning,
            expect: Rule::ReadMostlyWrite,
            layout,
            tasks: vec![task(0, 0, writer), reader(1), reader(2)],
            kind: CaseKind::Analysis(AnalysisConfig::default()),
        });
    }

    // SP003: three tasks read-modify-write one counter line under the
    // same lock — contended migratory data.
    {
        let mut layout = Layout::new();
        let ctr = layout.shared("ctr", 64);
        let mk = |t: usize| {
            let mut b = ProgBuilder::new();
            b.lock(LockId(0))
                .load_shared(ctr.at_byte(0))
                .store_shared(ctr.at_byte(0))
                .unlock(LockId(0));
            task(t, t as u32, b.build("m"))
        };
        cases.push(MutationCase {
            name: "contended-migratory-counter",
            expect_severity: Severity::Warning,
            expect: Rule::ContendedMigratory,
            layout,
            tasks: vec![mk(0), mk(1), mk(2)],
            kind: CaseKind::Analysis(AnalysisConfig::default()),
        });
    }

    // SP004: task 1 re-reads a line two phases after its last read with no
    // intervening write — self-invalidation would have discarded a
    // still-valid copy at the barrier.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let writer = {
            let mut b = ProgBuilder::new();
            b.store_shared(x.at_byte(0));
            b.barrier(BarrierId(0)).barrier(BarrierId(0)).barrier(BarrierId(0));
            b.build("m")
        };
        let reader = {
            let mut b = ProgBuilder::new();
            b.barrier(BarrierId(0));
            b.load_shared(x.at_byte(0)).barrier(BarrierId(0));
            b.load_shared(x.at_byte(0)).barrier(BarrierId(0)); // re-read, no write since
            b.build("m")
        };
        cases.push(MutationCase {
            name: "si-hostile-reread",
            expect_severity: Severity::Warning,
            expect: Rule::SiHostile,
            layout,
            tasks: vec![task(0, 0, writer), task(1, 1, reader)],
            kind: CaseKind::Analysis(AnalysisConfig::default()),
        });
    }

    // SP005: four tasks touch a written line under a 2-pointer directory;
    // the sharer set overflows and invalidations broadcast.
    {
        let mut layout = Layout::new();
        let x = layout.shared("x", 64);
        let writer = {
            let mut b = ProgBuilder::new();
            b.store_shared(x.at_byte(0)).barrier(BarrierId(0));
            b.build("m")
        };
        let reader = |t: usize| {
            let mut b = ProgBuilder::new();
            b.barrier(BarrierId(0));
            b.load_shared(x.at_byte(0));
            task(t, t as u32, b.build("m"))
        };
        cases.push(MutationCase {
            name: "limited-pointer-broadcast",
            expect_severity: Severity::Warning,
            expect: Rule::BroadcastOverflow,
            layout,
            tasks: vec![task(0, 0, writer), reader(1), reader(2), reader(3)],
            kind: CaseKind::Analysis(AnalysisConfig {
                limited_ptrs: Some(2),
                ..AnalysisConfig::default()
            }),
        });
    }

    // SP006: one task carries 60k cycles of compute in a phase where the
    // other is idle — the barrier stalls the light task for the duration.
    {
        let layout = Layout::new();
        let heavy = {
            let mut b = ProgBuilder::new();
            b.compute(60_000).barrier(BarrierId(0));
            b.build("m")
        };
        let light = {
            let mut b = ProgBuilder::new();
            b.compute(10).barrier(BarrierId(0));
            b.build("m")
        };
        cases.push(MutationCase {
            name: "imbalanced-phase",
            expect_severity: Severity::Warning,
            expect: Rule::LoadImbalance,
            layout,
            tasks: vec![task(0, 0, heavy), task(1, 1, light)],
            kind: CaseKind::Analysis(AnalysisConfig::default()),
        });
    }

    cases
}

/// Runs one case through the appropriate verifier entry point.
pub fn run_case(case: &MutationCase) -> Vec<Diagnostic> {
    match &case.kind {
        CaseKind::TaskSet => verify_tasks(&case.layout, &case.tasks),
        CaseKind::Pair => verify_pair(&case.layout, &case.tasks[0], &case.tasks[1]),
        CaseKind::Contract(c) => verify_contract(&case.tasks, c),
        CaseKind::Analysis(cfg) => analyze_tasks(&case.layout, &case.tasks, cfg).diagnostics,
    }
}

/// Runs every case; returns a failure message per case whose expected rule
/// did not fire at its expected severity (empty = verifier healthy).
pub fn selftest() -> Vec<String> {
    let mut failures = Vec::new();
    for case in mutation_cases() {
        let diags = run_case(&case);
        let hit = diags
            .iter()
            .any(|d| d.rule == case.expect && d.severity == case.expect_severity);
        if !hit {
            let got: Vec<&str> = diags.iter().map(|d| d.rule.id()).collect();
            failures.push(format!(
                "case `{}`: expected {} to fire, got {:?}",
                case.name,
                case.expect.id(),
                got
            ));
        }
    }
    failures
}
