//! Eraser-style lockset analysis (rule SC013).
//!
//! The happens-before pass in `verify.rs` explores exactly *one* schedule:
//! tasks run in index order until they block. Lock release→acquire edges
//! therefore depend on which task reached a lock first in that schedule,
//! and a program whose safety depends on a particular acquisition order
//! can look race-free to the vector clocks while racing under another
//! interleaving. Lock *discipline* is schedule-independent, which is the
//! classic Eraser observation: if every access to an address holds a
//! common lock, no interleaving can race on it.
//!
//! This pass maintains, per shared address, the intersection of the lock
//! sets held at each access ("candidate lockset"), refined with one piece
//! of structure Eraser lacks: barrier generations. All tasks participate
//! in every barrier (rule SC003 enforces this), so two accesses separated
//! by a barrier are ordered no matter the schedule — the candidate set is
//! reset whenever the address is next touched in a later generation, and
//! only same-generation accesses refine it.
//!
//! SC013 fires when, within one barrier generation, an address is touched
//! by two or more tasks, at least one access writes, at least one access
//! held a lock (the program signals lock discipline for the address), and
//! the candidate lockset still drains empty. Event-synchronized,
//! never-locked addresses (producer/consumer hand-offs) are deliberately
//! out of scope — they are the happens-before pass's job — so the rule
//! adds schedule-independent coverage without flagging barrier- or
//! event-disciplined programs.
//!
//! The pass also cross-validates the two analyses: an address the vector
//! clocks report as racing (SC001) must also have lost its candidate
//! lockset in some multi-task window, because lock edges are part of the
//! happens-before order. A consistently locked address that still races
//! means one of the passes regressed; that inconsistency is reported as
//! an SC013 warning.

use slipstream_kernel::FxHashMap;

use crate::diag::{Diagnostic, Rule};

/// Caps SC013 reports the same way SC001 caps race reports.
const MAX_LOCKSET_REPORTS: usize = 50;

/// Per-address lockset state for the current barrier-generation window.
struct LsCell {
    /// Barrier generation of the accesses contributing to this window.
    gen: u64,
    /// Candidate lockset: locks held at *every* access in the window.
    cand: Vec<u32>,
    /// A lock was held at some access in the window.
    any_locked: bool,
    /// Some access in the window wrote.
    wrote: bool,
    /// First task to touch the address in this window.
    first_task: usize,
    /// A second task has touched the address in this window.
    multi_task: bool,
    /// SC013 already reported for this address (dedup across windows).
    reported: bool,
    /// Some multi-task window drained the candidate set empty (used by
    /// the SC001 cross-validation).
    ever_lost: bool,
}

/// The lockset analysis, fed by the scheduler as it executes accesses.
#[derive(Default)]
pub struct Lockset {
    cells: FxHashMap<u64, LsCell>,
    reports: usize,
    suppressed: u64,
}

impl Lockset {
    /// Records one well-formed shared access and reports an SC013
    /// violation if this access drains the window's candidate lockset.
    ///
    /// `gen` is the task's barrier generation (barriers crossed so far);
    /// `held` is the set of lock ids the task holds at the access.
    #[allow(clippy::too_many_arguments)] // mirrors the scheduler's access context
    pub fn access(
        &mut self,
        task: usize,
        addr: u64,
        gen: u64,
        held: &[u32],
        is_write: bool,
        op: u64,
        diags: &mut Vec<Diagnostic>,
    ) {
        let cell = self.cells.entry(addr).or_insert_with(|| LsCell {
            gen,
            cand: held.to_vec(),
            any_locked: !held.is_empty(),
            wrote: is_write,
            first_task: task,
            multi_task: false,
            reported: false,
            ever_lost: false,
        });
        if cell.gen != gen {
            // A barrier separates this access from the whole window:
            // ordered regardless of schedule, so the window restarts.
            cell.gen = gen;
            cell.cand.clear();
            cell.cand.extend_from_slice(held);
            cell.any_locked = !held.is_empty();
            cell.wrote = is_write;
            cell.first_task = task;
            cell.multi_task = false;
            return;
        }
        cell.cand.retain(|l| held.contains(l));
        cell.any_locked |= !held.is_empty();
        cell.wrote |= is_write;
        cell.multi_task |= task != cell.first_task;
        if cell.multi_task && cell.cand.is_empty() {
            cell.ever_lost = true;
        }
        if cell.multi_task && cell.wrote && cell.any_locked && cell.cand.is_empty() && !cell.reported
        {
            cell.reported = true;
            if self.reports >= MAX_LOCKSET_REPORTS {
                self.suppressed += 1;
                return;
            }
            self.reports += 1;
            diags.push(
                Diagnostic::error(
                    Rule::LocksetRace,
                    format!(
                        "inconsistent lock protection: tasks {} and {task} touch this \
                         address in the same barrier phase (generation {gen}), at least \
                         one write and one lock-protected access, but no lock is common \
                         to all accesses",
                        cell.first_task
                    ),
                )
                .at_task(task)
                .at_op(op)
                .at_addr(addr),
            );
        }
    }

    /// End-of-run reporting: the suppression note and the SC001
    /// cross-validation (any happens-before race must also have lost its
    /// candidate lockset — lock edges are part of happens-before, so a
    /// consistently locked address that still "races" means one of the
    /// two analyses is wrong).
    pub fn finish(&mut self, raced: impl Iterator<Item = u64>, diags: &mut Vec<Diagnostic>) {
        if self.suppressed > 0 {
            diags.push(Diagnostic::error(
                Rule::LocksetRace,
                format!(
                    "{} additional lockset violations suppressed (cap {MAX_LOCKSET_REPORTS})",
                    self.suppressed
                ),
            ));
        }
        let mut divergent: Vec<u64> = raced
            .filter(|addr| {
                self.cells
                    .get(addr)
                    .is_some_and(|c| c.multi_task && !c.ever_lost && !c.cand.is_empty())
            })
            .collect();
        divergent.sort_unstable();
        for addr in divergent {
            diags.push(
                Diagnostic::warning(
                    Rule::LocksetRace,
                    "lockset/happens-before divergence: address raced (SC001) yet kept a \
                     consistent candidate lockset — verifier passes disagree"
                        .to_string(),
                )
                .at_addr(addr),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_for(accesses: &[(usize, u64, u64, &[u32], bool)]) -> Vec<Diagnostic> {
        let mut ls = Lockset::default();
        let mut diags = Vec::new();
        for (i, &(task, addr, gen, held, w)) in accesses.iter().enumerate() {
            ls.access(task, addr, gen, held, w, i as u64, &mut diags);
        }
        ls.finish(std::iter::empty(), &mut diags);
        diags
    }

    #[test]
    fn consistent_lock_is_clean() {
        let d = diags_for(&[
            (0, 64, 0, &[1], true),
            (1, 64, 0, &[1], true),
            (2, 64, 0, &[1, 2], false),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn missing_lock_on_one_access_fires() {
        let d = diags_for(&[(0, 64, 0, &[1], true), (1, 64, 0, &[], true)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::LocksetRace);
    }

    #[test]
    fn never_locked_addresses_are_out_of_scope() {
        // Barrier/event-disciplined data: the HB pass owns this case.
        let d = diags_for(&[(0, 64, 0, &[], true), (1, 64, 0, &[], true)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn barrier_generation_resets_the_window() {
        // Writer under lock in generation 0; unlocked readers in
        // generation 1 are barrier-ordered, not a discipline violation.
        let d = diags_for(&[
            (0, 64, 0, &[1], true),
            (1, 64, 1, &[], false),
            (2, 64, 1, &[], false),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn read_only_windows_are_clean() {
        let d = diags_for(&[(0, 64, 0, &[1], false), (1, 64, 0, &[], false)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn one_report_per_address() {
        let d = diags_for(&[
            (0, 64, 0, &[1], true),
            (1, 64, 0, &[], true),
            (2, 64, 0, &[], true),
        ]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn crosscheck_flags_consistent_lockset_on_raced_address() {
        let mut ls = Lockset::default();
        let mut diags = Vec::new();
        ls.access(0, 64, 0, &[1], true, 0, &mut diags);
        ls.access(1, 64, 0, &[1], true, 1, &mut diags);
        assert!(diags.is_empty());
        ls.finish(std::iter::once(64), &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::LocksetRace);
        assert_eq!(diags[0].severity, crate::Severity::Warning);
    }
}
