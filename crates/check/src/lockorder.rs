//! Lock-order graph deadlock detector (rule SC014).
//!
//! The happens-before verifier's progress check (SC010) only reports a
//! deadlock when the one schedule it explores actually wedges. The
//! cooperative index-order scheduler rarely does: with two tasks nesting
//! locks in opposite orders, task 0 usually completes its critical
//! section before task 1 even starts, so SC010 stays silent while a real
//! machine can interleave the acquisitions and deadlock.
//!
//! This pass builds the classic *acquired-while-holding* relation: an
//! edge `a → b` is recorded whenever a task attempts to acquire lock `b`
//! while holding lock `a` (the attempt counts even if the acquire
//! blocks — that attempt is exactly the deadlock ingredient). A cycle in
//! the graph means there exists a schedule in which every lock on the
//! cycle is held by a task waiting for the next one. Each strongly
//! connected component with a cycle is reported once as an SC014 error
//! with one witness edge per participating lock.

use slipstream_kernel::FxHashMap;

use crate::diag::{Diagnostic, Rule};

/// One recorded acquired-while-holding edge with its first witness.
struct Edge {
    to: u32,
    /// Task and op index of the first acquisition attempt that created
    /// this edge.
    task: usize,
    op: u64,
}

/// The acquired-while-holding graph, fed by the scheduler on every lock
/// acquisition attempt.
#[derive(Default)]
pub struct LockOrder {
    /// Adjacency: held lock -> edges to locks acquired under it.
    edges: FxHashMap<u32, Vec<Edge>>,
    /// Every lock id that appears in the graph (node set).
    nodes: Vec<u32>,
}

impl LockOrder {
    /// Records that `task` attempted to acquire `acquiring` (op index
    /// `op`) while holding `held`. Call *before* the block/grant
    /// decision: a blocked attempt is still an ordering commitment.
    pub fn acquire(&mut self, task: usize, held: &[u32], acquiring: u32, op: u64) {
        self.touch_node(acquiring);
        for &h in held {
            self.touch_node(h);
            let out = self.edges.entry(h).or_default();
            if !out.iter().any(|e| e.to == acquiring) {
                out.push(Edge { to: acquiring, task, op });
            }
        }
    }

    fn touch_node(&mut self, lock: u32) {
        if !self.nodes.contains(&lock) {
            self.nodes.push(lock);
        }
    }

    /// Finds cycles and reports each cyclic strongly connected component
    /// as one SC014 error.
    pub fn finish(&self, diags: &mut Vec<Diagnostic>) {
        for scc in self.cyclic_sccs() {
            // One witness edge per lock on the cycle keeps the message
            // actionable without dumping the whole graph.
            let mut witness = String::new();
            let mut first_task = None;
            let mut first_op = None;
            for &from in &scc {
                if let Some(out) = self.edges.get(&from) {
                    if let Some(e) = out.iter().find(|e| scc.contains(&e.to)) {
                        if !witness.is_empty() {
                            witness.push_str(", ");
                        }
                        witness.push_str(&format!("task {} holds L{from} then takes L{}", e.task, e.to));
                        if first_task.is_none() {
                            first_task = Some(e.task);
                            first_op = Some(e.op);
                        }
                    }
                }
            }
            let locks: Vec<String> = scc.iter().map(|l| format!("L{l}")).collect();
            let mut d = Diagnostic::error(
                Rule::LockOrderCycle,
                format!(
                    "lock-order cycle over {{{}}}: {witness}; some interleaving deadlocks \
                     even though the explored schedule completed",
                    locks.join(", ")
                ),
            );
            if let Some(t) = first_task {
                d = d.at_task(t);
            }
            if let Some(o) = first_op {
                d = d.at_op(o);
            }
            diags.push(d);
        }
    }

    /// Tarjan's algorithm, iterative; returns SCCs that contain a cycle
    /// (size >= 2, or a self-loop), each sorted by lock id. Components
    /// are emitted in a deterministic order.
    fn cyclic_sccs(&self) -> Vec<Vec<u32>> {
        let mut nodes = self.nodes.clone();
        nodes.sort_unstable();
        let index_of: FxHashMap<u32, usize> =
            nodes.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out = Vec::new();

        // succ(v): successor node indices in sorted order (determinism).
        let succ = |v: usize| -> Vec<usize> {
            let mut s: Vec<usize> = self
                .edges
                .get(&nodes[v])
                .map(|es| es.iter().map(|e| index_of[&e.to]).collect())
                .unwrap_or_default();
            s.sort_unstable();
            s
        };

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // Explicit DFS stack of (node, next successor position).
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, pos)) = call.last() {
                if pos == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let succs = succ(v);
                if pos < succs.len() {
                    call.last_mut().unwrap().1 += 1;
                    let w = succs[pos];
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            scc.push(nodes[w]);
                            if w == v {
                                break;
                            }
                        }
                        let cyclic = scc.len() > 1
                            || self
                                .edges
                                .get(&scc[0])
                                .is_some_and(|es| es.iter().any(|e| e.to == scc[0]));
                        if cyclic {
                            scc.sort_unstable();
                            out.push(scc);
                        }
                    }
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(lo: &LockOrder) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        lo.finish(&mut diags);
        diags
    }

    #[test]
    fn consistent_order_is_clean() {
        let mut lo = LockOrder::default();
        lo.acquire(0, &[1], 2, 10);
        lo.acquire(1, &[1], 2, 20);
        lo.acquire(2, &[1, 2], 3, 30);
        assert!(report(&lo).is_empty());
    }

    #[test]
    fn two_lock_inversion_fires_once() {
        let mut lo = LockOrder::default();
        lo.acquire(0, &[1], 2, 10);
        lo.acquire(1, &[2], 1, 20);
        let d = report(&lo);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::LockOrderCycle);
        assert!(d[0].message.contains("L1"));
        assert!(d[0].message.contains("L2"));
    }

    #[test]
    fn three_lock_cycle_is_one_component() {
        let mut lo = LockOrder::default();
        lo.acquire(0, &[1], 2, 1);
        lo.acquire(1, &[2], 3, 2);
        lo.acquire(2, &[3], 1, 3);
        let d = report(&lo);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("L1, L2, L3"));
    }

    #[test]
    fn self_nesting_is_a_self_loop() {
        // Re-acquiring a held lock: the exec pass reports the wedge as
        // SC010 in the explored schedule, but the order graph flags it
        // schedule-independently too.
        let mut lo = LockOrder::default();
        lo.acquire(0, &[7], 7, 5);
        let d = report(&lo);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("L7"));
    }

    #[test]
    fn disjoint_cycles_report_separately() {
        let mut lo = LockOrder::default();
        lo.acquire(0, &[1], 2, 1);
        lo.acquire(1, &[2], 1, 2);
        lo.acquire(2, &[5], 6, 3);
        lo.acquire(3, &[6], 5, 4);
        assert_eq!(report(&lo).len(), 2);
    }
}
