//! Pattern contract verification (rule SC015).
//!
//! Programs emitted by `slipstream-gen` carry a declared [`PatternContract`]
//! derived from their `PatternSpec`: how many lines must be shared by how
//! many tasks, how many migration hops (lock acquisitions) must occur, how
//! many lines must be falsely shared, how the sync structure looks. This
//! pass checks the *generated IR* against that declaration, closing the
//! generator's own loop: a generator bug that silently produces programs
//! not exhibiting the sharing pattern they claim would otherwise corrupt
//! every experiment built on the corpus while remaining race-free and
//! invisible to SC001..SC014.
//!
//! The check is purely structural — it walks op lists and counts, with no
//! scheduling — so it is independent of both the happens-before and the
//! lockset passes.

use slipstream_kernel::FxHashMap;
use slipstream_prog::{Op, Space};

use crate::diag::{Diagnostic, Rule};
use crate::verify::TaskProgram;

/// One structural requirement of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractItem {
    /// At least `min_lines` distinct shared lines are each accessed by at
    /// least `min_tasks` distinct tasks (degree of sharing).
    SharedLines { min_lines: usize, min_tasks: usize },
    /// Every shared address that is written has exactly one writer task
    /// (ownership discipline: producer-consumer, false sharing, read-mostly).
    SingleWriterAddrs,
    /// At least `min_lines` shared lines hold writes by at least
    /// `min_writers` distinct tasks at *distinct* addresses — the false
    /// sharing signature (line ping-pong without a data race).
    FalseSharedLines { min_lines: usize, min_writers: usize },
    /// Lock `lock` is acquired exactly `total` times across all tasks
    /// (migratory data: each hop is one acquisition).
    LockAcquires { lock: u32, total: u64 },
    /// At least `min` lock acquisitions occur across all tasks.
    MinLockAcquires { min: u64 },
    /// Every task executes exactly `per_task` barrier operations.
    BarriersPerTask { per_task: u64 },
    /// Exactly `total` event posts and `total` event waits occur across
    /// all tasks (producer-consumer handshakes).
    EventHandshakes { total: u64 },
    /// At least `min` `DivergeInA` ops occur across all tasks.
    MinDivergeOps { min: u64 },
}

/// The structural contract a generated program set declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternContract {
    /// Pattern name, e.g. `"migratory"` (reported in diagnostics).
    pub pattern: String,
    /// Coherence line size used for line-granular items.
    pub line_bytes: u64,
    /// The requirements; all must hold.
    pub items: Vec<ContractItem>,
}

/// Per-address / per-line / per-task statistics gathered in one walk.
#[derive(Default)]
struct Stats {
    /// Shared line -> distinct accessor tasks (sorted small vec).
    line_tasks: FxHashMap<u64, Vec<usize>>,
    /// Written shared address -> distinct writer tasks.
    addr_writers: FxHashMap<u64, Vec<usize>>,
    /// Shared line -> distinct (writer task, addr) pairs.
    line_writers: FxHashMap<u64, Vec<(usize, u64)>>,
    /// Lock id -> total acquisitions.
    lock_acquires: FxHashMap<u32, u64>,
    /// Task -> barrier op count.
    barriers: FxHashMap<usize, u64>,
    posts: u64,
    waits: u64,
    diverges: u64,
}

fn push_unique<T: PartialEq>(v: &mut Vec<T>, x: T) {
    if !v.contains(&x) {
        v.push(x);
    }
}

fn collect(tasks: &[TaskProgram], line_bytes: u64) -> Stats {
    let mut s = Stats::default();
    let lb = line_bytes.max(1);
    for tp in tasks {
        for op in tp.prog.iter() {
            match op {
                Op::Load { addr, space: Space::Shared } => {
                    push_unique(s.line_tasks.entry(addr.0 / lb).or_default(), tp.task);
                }
                Op::Store { addr, space: Space::Shared } => {
                    push_unique(s.line_tasks.entry(addr.0 / lb).or_default(), tp.task);
                    push_unique(s.addr_writers.entry(addr.0).or_default(), tp.task);
                    push_unique(
                        s.line_writers.entry(addr.0 / lb).or_default(),
                        (tp.task, addr.0),
                    );
                }
                Op::Lock(l) => *s.lock_acquires.entry(l.0).or_default() += 1,
                Op::Barrier(_) => *s.barriers.entry(tp.task).or_default() += 1,
                Op::EventPost(_) => s.posts += 1,
                Op::EventWait(_) => s.waits += 1,
                Op::DivergeInA(_) => s.diverges += 1,
                _ => {}
            }
        }
    }
    s
}

/// Checks a task set against its declared contract; one SC015 error per
/// violated item.
pub fn verify_contract(tasks: &[TaskProgram], contract: &PatternContract) -> Vec<Diagnostic> {
    let s = collect(tasks, contract.line_bytes);
    let mut diags = Vec::new();
    let mut fail = |msg: String| {
        diags.push(Diagnostic::error(
            Rule::PatternContract,
            format!("pattern '{}': {msg}", contract.pattern),
        ));
    };
    for item in &contract.items {
        match item {
            ContractItem::SharedLines { min_lines, min_tasks } => {
                let got = s.line_tasks.values().filter(|t| t.len() >= *min_tasks).count();
                if got < *min_lines {
                    fail(format!(
                        "expected >= {min_lines} shared lines with >= {min_tasks} accessor \
                         tasks, found {got}"
                    ));
                }
            }
            ContractItem::SingleWriterAddrs => {
                let mut multi: Vec<u64> = s
                    .addr_writers
                    .iter()
                    .filter(|(_, w)| w.len() > 1)
                    .map(|(a, _)| *a)
                    .collect();
                multi.sort_unstable();
                if let Some(addr) = multi.first() {
                    fail(format!(
                        "expected single-writer ownership, but {} addresses have multiple \
                         writer tasks (first: {addr:#x})",
                        multi.len()
                    ));
                }
            }
            ContractItem::FalseSharedLines { min_lines, min_writers } => {
                let got = s
                    .line_writers
                    .values()
                    .filter(|ws| {
                        let mut tasks: Vec<usize> = ws.iter().map(|(t, _)| *t).collect();
                        tasks.sort_unstable();
                        tasks.dedup();
                        let mut addrs: Vec<u64> = ws.iter().map(|(_, a)| *a).collect();
                        addrs.sort_unstable();
                        addrs.dedup();
                        tasks.len() >= *min_writers && addrs.len() >= *min_writers
                    })
                    .count();
                if got < *min_lines {
                    fail(format!(
                        "expected >= {min_lines} falsely shared lines (>= {min_writers} \
                         writer tasks at distinct addresses), found {got}"
                    ));
                }
            }
            ContractItem::LockAcquires { lock, total } => {
                let got = s.lock_acquires.get(lock).copied().unwrap_or(0);
                if got != *total {
                    fail(format!("expected lock L{lock} acquired {total} times, found {got}"));
                }
            }
            ContractItem::MinLockAcquires { min } => {
                let got: u64 = s.lock_acquires.values().sum();
                if got < *min {
                    fail(format!("expected >= {min} lock acquisitions, found {got}"));
                }
            }
            ContractItem::BarriersPerTask { per_task } => {
                for tp in tasks {
                    let got = s.barriers.get(&tp.task).copied().unwrap_or(0);
                    if got != *per_task {
                        fail(format!(
                            "expected {per_task} barriers in task {}, found {got}",
                            tp.task
                        ));
                        break;
                    }
                }
            }
            ContractItem::EventHandshakes { total } => {
                if s.posts != *total || s.waits != *total {
                    fail(format!(
                        "expected {total} event posts and waits, found {} posts / {} waits",
                        s.posts, s.waits
                    ));
                }
            }
            ContractItem::MinDivergeOps { min } => {
                if s.diverges < *min {
                    fail(format!("expected >= {min} DivergeInA ops, found {}", s.diverges));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use slipstream_prog::{BarrierId, EventId, InstanceId, LockId, ProgBuilder};
    use slipstream_kernel::Addr;

    fn tp(task: usize, ops: Vec<Op>) -> TaskProgram {
        let mut b = ProgBuilder::new();
        for op in ops {
            b.op(op);
        }
        TaskProgram { task, inst: InstanceId(task as u32), prog: b.build("t") }
    }

    fn contract(items: Vec<ContractItem>) -> PatternContract {
        PatternContract { pattern: "test".into(), line_bytes: 64, items }
    }

    #[test]
    fn shared_lines_and_single_writer_hold() {
        let tasks = vec![
            tp(0, vec![Op::store_shared(Addr(64)), Op::Barrier(BarrierId(0))]),
            tp(1, vec![Op::load_shared(Addr(64)), Op::Barrier(BarrierId(0))]),
        ];
        let c = contract(vec![
            ContractItem::SharedLines { min_lines: 1, min_tasks: 2 },
            ContractItem::SingleWriterAddrs,
            ContractItem::BarriersPerTask { per_task: 1 },
        ]);
        assert!(verify_contract(&tasks, &c).is_empty());
    }

    #[test]
    fn multiple_writers_break_single_writer() {
        let tasks = vec![
            tp(0, vec![Op::store_shared(Addr(64))]),
            tp(1, vec![Op::store_shared(Addr(64))]),
        ];
        let c = contract(vec![ContractItem::SingleWriterAddrs]);
        let d = verify_contract(&tasks, &c);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PatternContract);
    }

    #[test]
    fn false_sharing_needs_distinct_addrs_on_one_line() {
        // Two tasks writing different words of line 1: falsely shared.
        let fs = vec![
            tp(0, vec![Op::store_shared(Addr(64))]),
            tp(1, vec![Op::store_shared(Addr(72))]),
        ];
        let c = contract(vec![ContractItem::FalseSharedLines { min_lines: 1, min_writers: 2 }]);
        assert!(verify_contract(&fs, &c).is_empty());
        // Writes on separate lines do not count.
        let split = vec![
            tp(0, vec![Op::store_shared(Addr(64))]),
            tp(1, vec![Op::store_shared(Addr(128))]),
        ];
        assert_eq!(verify_contract(&split, &c).len(), 1);
    }

    #[test]
    fn lock_and_event_counts_are_exact() {
        let tasks = vec![
            tp(0, vec![Op::Lock(LockId(3)), Op::Unlock(LockId(3)), Op::EventPost(EventId(0))]),
            tp(1, vec![Op::Lock(LockId(3)), Op::Unlock(LockId(3)), Op::EventWait(EventId(0))]),
        ];
        let ok = contract(vec![
            ContractItem::LockAcquires { lock: 3, total: 2 },
            ContractItem::MinLockAcquires { min: 2 },
            ContractItem::EventHandshakes { total: 1 },
        ]);
        assert!(verify_contract(&tasks, &ok).is_empty());
        let bad = contract(vec![ContractItem::LockAcquires { lock: 3, total: 4 }]);
        assert_eq!(verify_contract(&tasks, &bad).len(), 1);
    }

    #[test]
    fn diverge_minimum() {
        let tasks = vec![tp(0, vec![Op::DivergeInA(100)])];
        assert!(verify_contract(&tasks, &contract(vec![ContractItem::MinDivergeOps { min: 1 }]))
            .is_empty());
        assert_eq!(
            verify_contract(&tasks, &contract(vec![ContractItem::MinDivergeOps { min: 2 }])).len(),
            1
        );
    }
}
