//! Correctness and performance-prediction tooling for the slipstream
//! reproduction.
//!
//! Three independent passes guard the paper's assumptions:
//!
//! 1. **Static DSL verifier** ([`verify_workload`], [`verify_tasks`]) —
//!    walks each workload's generated task programs once, computing
//!    happens-before with vector clocks over barriers, locks, and events,
//!    and reports data races on shared data, private-space isolation
//!    violations, barrier/lock/event discipline bugs, and layout
//!    inconsistencies as typed [`Diagnostic`]s (rules `SC001`..`SC012`).
//!    The paper's A-stream safety argument (§3.2) holds only for properly
//!    synchronized programs, so every workload is linted before its
//!    numbers are trusted.
//!
//! 2. **Dynamic protocol invariant checker** ([`ProtocolChecker`],
//!    [`run_checked`]) — shadows the directory and L2 copy state through
//!    the observation-only [`slipstream_mem::MemTracer`] hooks during a
//!    real simulation and asserts SWMR, sharer-set/copy agreement at
//!    quiescence, MSHR no-leak, and the §4 self-invalidation contracts
//!    (rules `PC001`..`PC009`). Checked runs are bit-identical to
//!    unchecked ones.
//!
//! 3. **Static sharing analyzer** ([`analyze`], [`cross_validate`]) — a
//!    schedule-independent abstract interpretation that predicts each
//!    region's sharing class, bounds the coherence traffic a single-mode
//!    run can generate, and emits performance lints (`SP001`..`SP006`).
//!    Its predictions are differentially validated against instrumented
//!    runs over the quick suite and the fuzz corpus.
//!
//! The `check` binary fronts the first two and the `predict` binary the
//! third; `docs/static-analysis.md` documents the rule catalogue.

pub mod analysis;
pub mod contract;
pub mod diag;
pub mod lockorder;
pub mod lockset;
pub mod mutations;
pub mod predict;
pub mod protocol;
pub mod verify;

pub use analysis::{
    analyze, analyze_tasks, Analysis, AnalysisConfig, CostEstimate, ObservedClass, RegionClass,
    SharingClass, TrafficBounds,
};
pub use contract::{verify_contract, ContractItem, PatternContract};
pub use diag::{has_errors, json_escape, Diagnostic, Rule, Severity};
pub use predict::{
    cross_validate, cross_validate_with, BoundCheck, RegionDelta, SharingObserver,
    ValidationReport,
};
pub use protocol::{
    run_checked, CheckCounts, CheckReport, CheckTracer, ProtoRule, ProtocolChecker, Violation,
};
pub use verify::{verify_layout, verify_pair, verify_tasks, TaskProgram};

use slipstream_core::Workload;
use slipstream_kernel::config::MachineConfig;
use slipstream_prog::{InstanceId, Layout};

/// A workload's instantiated task programs, in the runner's layout.
///
/// Produced by [`instantiate_workload`]; callers that need the programs
/// themselves (the pattern-contract check, the fuzz pipeline's structural
/// reporting) use this instead of re-implementing the runner's
/// instantiation conventions.
pub struct TaskSet {
    /// The layout all programs were built against.
    pub layout: Layout,
    /// Conventional tasks, or the R-stream set in slipstream mode.
    pub r: Vec<TaskProgram>,
    /// A-stream programs (one per task) in slipstream mode; empty for
    /// conventional task sets.
    pub a: Vec<TaskProgram>,
}

/// Instantiates a workload's task programs exactly the way the runner
/// would for a run with `ntasks` tasks.
///
/// * `slipstream == false` — a conventional task set: instance `t` runs
///   task `t` (covers both `Single` with `ntasks == nodes` and `Double`
///   with `ntasks == 2 * nodes`).
/// * `slipstream == true` — task `t`'s R-stream is instance `2t` and its
///   A-stream instance `2t+1`, built in the runner's order (R then A per
///   task) so private regions land at the same addresses the simulator
///   would use.
pub fn instantiate_workload(
    workload: &dyn Workload,
    page_bytes: u64,
    ntasks: usize,
    slipstream: bool,
) -> TaskSet {
    let mut layout = Layout::with_page_size(page_bytes);
    let builder = workload.instantiate(ntasks, &mut layout);
    if !slipstream {
        let r: Vec<TaskProgram> = (0..ntasks)
            .map(|t| {
                let inst = InstanceId(t as u32);
                TaskProgram { task: t, inst, prog: builder(&mut layout, inst, t) }
            })
            .collect();
        TaskSet { layout, r, a: Vec::new() }
    } else {
        let mut r = Vec::with_capacity(ntasks);
        let mut a = Vec::with_capacity(ntasks);
        for t in 0..ntasks {
            let r_inst = InstanceId(2 * t as u32);
            r.push(TaskProgram { task: t, inst: r_inst, prog: builder(&mut layout, r_inst, t) });
            let a_inst = InstanceId(2 * t as u32 + 1);
            a.push(TaskProgram { task: t, inst: a_inst, prog: builder(&mut layout, a_inst, t) });
        }
        TaskSet { layout, r, a }
    }
}

/// Runs the full static analysis over an instantiated task set: layout
/// consistency, space discipline, happens-before (SC001..SC011), the
/// lockset and lock-order passes (SC013/SC014), and — in slipstream
/// mode — A/R skeleton identity per task (SC012).
pub fn verify_task_set(set: &TaskSet) -> Vec<Diagnostic> {
    let mut diags = verify_tasks(&set.layout, &set.r);
    for (r, a) in set.r.iter().zip(&set.a) {
        diags.extend(verify_pair(&set.layout, r, a));
    }
    diags
}

/// Statically verifies one workload's generated programs for a run with
/// `ntasks` tasks under an explicit machine configuration.
///
/// Mirrors the runner's instantiation conventions exactly (page size from
/// `cfg`, instance-id assignment per mode):
///
/// * `slipstream == false` — a conventional task set: instance `t` runs
///   task `t` (covers both `Single` with `ntasks == nodes` and `Double`
///   with `ntasks == 2 * nodes`). The full happens-before analysis runs
///   over all tasks.
/// * `slipstream == true` — task `t`'s R-stream is instance `2t` and its
///   A-stream instance `2t+1`. The R set gets the full analysis; each
///   A program is additionally checked for private isolation and for
///   skeleton identity with its R program (rule `SC012`), which is what
///   licenses the A-stream to run ahead.
pub fn verify_workload_with(
    cfg: &MachineConfig,
    workload: &dyn Workload,
    ntasks: usize,
    slipstream: bool,
) -> Vec<Diagnostic> {
    verify_task_set(&instantiate_workload(workload, cfg.page_bytes, ntasks, slipstream))
}

/// Statically verifies one workload's generated programs for a run with
/// `ntasks` tasks, deriving the machine configuration the same way the
/// runner does when no override is given (`MachineConfig::water` when the
/// workload wants a small L2, the default otherwise).
///
/// Workloads that run under an explicit `MachineConfig` — generated
/// programs in particular — should use [`verify_workload_with`] so the
/// page size matches their run configuration.
pub fn verify_workload(workload: &dyn Workload, ntasks: usize, slipstream: bool) -> Vec<Diagnostic> {
    let nodes = ntasks.max(1) as u16;
    let cfg = if workload.small_l2() {
        MachineConfig::water(nodes)
    } else {
        MachineConfig::with_nodes(nodes)
    };
    verify_workload_with(&cfg, workload, ntasks, slipstream)
}
