//! Correctness tooling for the slipstream reproduction.
//!
//! Two independent checkers guard the paper's assumptions:
//!
//! 1. **Static DSL verifier** ([`verify_workload`], [`verify_tasks`]) —
//!    walks each workload's generated task programs once, computing
//!    happens-before with vector clocks over barriers, locks, and events,
//!    and reports data races on shared data, private-space isolation
//!    violations, barrier/lock/event discipline bugs, and layout
//!    inconsistencies as typed [`Diagnostic`]s (rules `SC001`..`SC012`).
//!    The paper's A-stream safety argument (§3.2) holds only for properly
//!    synchronized programs, so every workload is linted before its
//!    numbers are trusted.
//!
//! 2. **Dynamic protocol invariant checker** ([`ProtocolChecker`],
//!    [`run_checked`]) — shadows the directory and L2 copy state through
//!    the observation-only [`slipstream_mem::MemTracer`] hooks during a
//!    real simulation and asserts SWMR, sharer-set/copy agreement at
//!    quiescence, MSHR no-leak, and the §4 self-invalidation contracts
//!    (rules `PC001`..`PC009`). Checked runs are bit-identical to
//!    unchecked ones.
//!
//! The `check` binary fronts both; `docs/static-analysis.md` documents the
//! rule catalogue.

pub mod diag;
pub mod mutations;
pub mod protocol;
pub mod verify;

pub use diag::{has_errors, json_escape, Diagnostic, Rule, Severity};
pub use protocol::{
    run_checked, CheckCounts, CheckReport, CheckTracer, ProtoRule, ProtocolChecker, Violation,
};
pub use verify::{verify_layout, verify_pair, verify_tasks, TaskProgram};

use slipstream_core::Workload;
use slipstream_kernel::config::MachineConfig;
use slipstream_prog::{InstanceId, Layout};

/// Statically verifies one workload's generated programs for a run with
/// `ntasks` tasks.
///
/// Mirrors the runner's instantiation conventions exactly (page size from
/// the workload's machine config, instance-id assignment per mode):
///
/// * `slipstream == false` — a conventional task set: instance `t` runs
///   task `t` (covers both `Single` with `ntasks == nodes` and `Double`
///   with `ntasks == 2 * nodes`). The full happens-before analysis runs
///   over all tasks.
/// * `slipstream == true` — task `t`'s R-stream is instance `2t` and its
///   A-stream instance `2t+1`. The R set gets the full analysis; each
///   A program is additionally checked for private isolation and for
///   skeleton identity with its R program (rule `SC012`), which is what
///   licenses the A-stream to run ahead.
pub fn verify_workload(workload: &dyn Workload, ntasks: usize, slipstream: bool) -> Vec<Diagnostic> {
    let nodes = ntasks.max(1) as u16;
    let cfg = if workload.small_l2() {
        MachineConfig::water(nodes)
    } else {
        MachineConfig::with_nodes(nodes)
    };
    let mut layout = Layout::with_page_size(cfg.page_bytes);
    let builder = workload.instantiate(ntasks, &mut layout);
    if !slipstream {
        let tasks: Vec<TaskProgram> = (0..ntasks)
            .map(|t| {
                let inst = InstanceId(t as u32);
                TaskProgram { task: t, inst, prog: builder(&mut layout, inst, t) }
            })
            .collect();
        verify_tasks(&layout, &tasks)
    } else {
        // Build in the runner's order (R then A per task) so private
        // regions land at the same addresses the simulator would use.
        let mut r_tasks = Vec::with_capacity(ntasks);
        let mut a_tasks = Vec::with_capacity(ntasks);
        for t in 0..ntasks {
            let r_inst = InstanceId(2 * t as u32);
            r_tasks.push(TaskProgram { task: t, inst: r_inst, prog: builder(&mut layout, r_inst, t) });
            let a_inst = InstanceId(2 * t as u32 + 1);
            a_tasks.push(TaskProgram { task: t, inst: a_inst, prog: builder(&mut layout, a_inst, t) });
        }
        let mut diags = verify_tasks(&layout, &r_tasks);
        for (r, a) in r_tasks.iter().zip(&a_tasks) {
            diags.extend(verify_pair(&layout, r, a));
        }
        diags
    }
}
