//! Typed diagnostics for the static program verifier.
//!
//! Every finding carries a stable rule id (`SC001`..`SC012`, catalogued in
//! `docs/static-analysis.md`), a severity, and — where meaningful — the
//! task and per-task operation index the finding anchors to. Diagnostics
//! render to one human-readable line or to a JSON object; the `check`
//! binary exits nonzero when any `Error`-severity diagnostic is present.

use std::fmt;

/// How bad a finding is. `Error` findings fail the `check` binary;
/// `Warning` findings are reported but do not affect the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong (e.g. leftover event posts).
    Warning,
    /// A contract violation: the program is not properly synchronized or
    /// its layout is inconsistent.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The verifier's rule catalogue. Stable ids; see `docs/static-analysis.md`
/// for the full description and the paper sections each rule protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// SC001: two tasks access the same `Space::Shared` address without a
    /// happens-before ordering, at least one of them writing.
    SharedRace,
    /// SC002: a `Space::Private` address owned by one instance is touched
    /// by a different task/instance.
    PrivateIsolation,
    /// SC003: tasks disagree on barrier participation (different arrival
    /// counts or ids), deadlocking or silently merging generations.
    BarrierMismatch,
    /// SC004: a task arrives at a barrier while holding a lock.
    LockAcrossBarrier,
    /// SC005: `Unlock` of a lock the task does not hold.
    UnlockWithoutLock,
    /// SC006: a task ends (or deadlocks the program) with locks held.
    LeakedLock,
    /// SC007: `EventWait` with no matching `EventPost` (error), or posts
    /// left unconsumed at program end (warning).
    UnbalancedEvents,
    /// SC008: two layout regions overlap.
    LayoutOverlap,
    /// SC009: an access's declared `Space` disagrees with the layout
    /// region containing its address.
    SpaceMismatch,
    /// SC010: the task set cannot make progress (lock cycle, self-deadlock,
    /// or a block not attributable to SC003/SC007).
    SyncDeadlock,
    /// SC011: an access to an address outside every layout region.
    UnmappedAddress,
    /// SC012: a slipstream A-instance program diverges from its R-instance
    /// (shared addresses or sync structure depend on the instance).
    InstanceDivergence,
    /// SC013: Eraser-style lockset violation — within one barrier phase, a
    /// shared address is accessed by multiple tasks (at least one writing,
    /// at least one access lock-protected) with no lock common to all of
    /// the phase's accesses. Unlike SC001, this is independent of the
    /// schedule the verifier happened to explore.
    LocksetRace,
    /// SC014: the acquired-while-holding relation contains a cycle — a
    /// potential deadlock SC010's progress check can only observe when the
    /// explored schedule actually wedges.
    LockOrderCycle,
    /// SC015: a generated program does not match its declared
    /// `PatternSpec` contract (sharer counts, migration hops, false-sharing
    /// line co-residency, sync structure).
    PatternContract,
    /// SP001: two or more tasks write distinct words of the same cache
    /// line — false sharing; the line ping-pongs even though no word is
    /// actually shared.
    FalseSharing,
    /// SP002: a read-mostly region (reads ≥ 4× writes, ≥ 2 reader tasks)
    /// is written in a phase where other tasks are concurrently reading
    /// it, invalidating many cached copies at once.
    ReadMostlyWrite,
    /// SP003: three or more tasks read-modify-write the same line under a
    /// common lock — migratory data whose exclusive copy serializes behind
    /// lock contention.
    ContendedMigratory,
    /// SP004: a task re-reads a multi-task line in a later barrier phase
    /// with no intervening write — self-invalidation would discard a copy
    /// that was still valid (an SI misfire, §4).
    SiHostile,
    /// SP005: under a limited-pointer directory, a written line has more
    /// accessor tasks than the directory has pointers — every invalidation
    /// becomes a broadcast.
    BroadcastOverflow,
    /// SP006: a barrier phase whose per-task static cost is strongly
    /// imbalanced; the barrier makes every task wait for the slowest.
    LoadImbalance,
}

impl Rule {
    /// Stable rule id, e.g. `"SC001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::SharedRace => "SC001",
            Rule::PrivateIsolation => "SC002",
            Rule::BarrierMismatch => "SC003",
            Rule::LockAcrossBarrier => "SC004",
            Rule::UnlockWithoutLock => "SC005",
            Rule::LeakedLock => "SC006",
            Rule::UnbalancedEvents => "SC007",
            Rule::LayoutOverlap => "SC008",
            Rule::SpaceMismatch => "SC009",
            Rule::SyncDeadlock => "SC010",
            Rule::UnmappedAddress => "SC011",
            Rule::InstanceDivergence => "SC012",
            Rule::LocksetRace => "SC013",
            Rule::LockOrderCycle => "SC014",
            Rule::PatternContract => "SC015",
            Rule::FalseSharing => "SP001",
            Rule::ReadMostlyWrite => "SP002",
            Rule::ContendedMigratory => "SP003",
            Rule::SiHostile => "SP004",
            Rule::BroadcastOverflow => "SP005",
            Rule::LoadImbalance => "SP006",
        }
    }

    /// Short kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SharedRace => "shared-data-race",
            Rule::PrivateIsolation => "private-isolation",
            Rule::BarrierMismatch => "barrier-mismatch",
            Rule::LockAcrossBarrier => "lock-across-barrier",
            Rule::UnlockWithoutLock => "unlock-without-lock",
            Rule::LeakedLock => "leaked-lock",
            Rule::UnbalancedEvents => "unbalanced-events",
            Rule::LayoutOverlap => "layout-overlap",
            Rule::SpaceMismatch => "space-mismatch",
            Rule::SyncDeadlock => "sync-deadlock",
            Rule::UnmappedAddress => "unmapped-address",
            Rule::InstanceDivergence => "instance-divergence",
            Rule::LocksetRace => "lockset-race",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::PatternContract => "pattern-contract",
            Rule::FalseSharing => "false-sharing",
            Rule::ReadMostlyWrite => "read-mostly-write",
            Rule::ContendedMigratory => "contended-migratory",
            Rule::SiHostile => "si-hostile",
            Rule::BroadcastOverflow => "broadcast-overflow",
            Rule::LoadImbalance => "load-imbalance",
        }
    }

    /// Every static rule, in id order (used by the selftest coverage
    /// check and the docs generator). `SC*` rules are correctness
    /// (error-severity) rules from the verifier; `SP*` rules are
    /// performance lints (warning-severity) from the sharing analyzer.
    pub const ALL: [Rule; 21] = [
        Rule::SharedRace,
        Rule::PrivateIsolation,
        Rule::BarrierMismatch,
        Rule::LockAcrossBarrier,
        Rule::UnlockWithoutLock,
        Rule::LeakedLock,
        Rule::UnbalancedEvents,
        Rule::LayoutOverlap,
        Rule::SpaceMismatch,
        Rule::SyncDeadlock,
        Rule::UnmappedAddress,
        Rule::InstanceDivergence,
        Rule::LocksetRace,
        Rule::LockOrderCycle,
        Rule::PatternContract,
        Rule::FalseSharing,
        Rule::ReadMostlyWrite,
        Rule::ContendedMigratory,
        Rule::SiHostile,
        Rule::BroadcastOverflow,
        Rule::LoadImbalance,
    ];

    /// One-paragraph catalogue entry for `check --explain`: what the rule
    /// detects, why it matters for the paper's argument, and what to do
    /// about it. The same text backs `docs/static-analysis.md`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::SharedRace => {
                "Two tasks access the same Space::Shared address without a \
                 happens-before ordering (via barriers, locks, or events), at \
                 least one of them writing. The program is racy: simulated \
                 results depend on the schedule and the paper's A-stream safety \
                 argument (§3.2) does not apply. Order the accesses with a \
                 barrier or protect them with a common lock."
            }
            Rule::PrivateIsolation => {
                "A Space::Private address owned by one instance is touched by a \
                 different task or instance. Private regions are per-instance by \
                 construction; crossing them means the layout or the program \
                 generator is wrong."
            }
            Rule::BarrierMismatch => {
                "Tasks disagree on barrier participation — different arrival \
                 counts or different barrier ids at the same rendezvous. The run \
                 would deadlock or silently merge generations. Every task must \
                 arrive at every barrier in the same order."
            }
            Rule::LockAcrossBarrier => {
                "A task arrives at a barrier while holding a lock. Any other \
                 task that needs the lock before its own arrival deadlocks the \
                 phase. Release locks before barrier arrival."
            }
            Rule::UnlockWithoutLock => {
                "Unlock of a lock the task does not hold. Lock/Unlock must nest \
                 per task; this is a generator or program bug."
            }
            Rule::LeakedLock => {
                "A task ends (or wedges the program) with locks still held, \
                 blocking every other contender forever. Balance each Lock with \
                 an Unlock on all paths."
            }
            Rule::UnbalancedEvents => {
                "EventWait with no matching EventPost (error: the waiter blocks \
                 forever), or posts left unconsumed at program end (warning: \
                 harmless but suspicious). Pair posts and waits one to one."
            }
            Rule::LayoutOverlap => {
                "Two layout regions overlap in the address space. All footprint \
                 and coherence reasoning assumes disjoint regions; overlapping \
                 regions make sharing classes and space checks meaningless."
            }
            Rule::SpaceMismatch => {
                "An access's declared Space disagrees with the layout region \
                 containing its address (e.g. a Space::Private load into a \
                 shared region). The access would be simulated under the wrong \
                 coherence rules."
            }
            Rule::SyncDeadlock => {
                "The task set cannot make progress: a lock cycle, self-deadlock, \
                 or a wedge not attributable to SC003/SC007. The verifier's \
                 cooperative scheduler ran out of runnable tasks before all \
                 programs finished."
            }
            Rule::UnmappedAddress => {
                "An access to an address outside every layout region. The \
                 simulator would fault or silently allocate; the program and \
                 its layout are out of sync."
            }
            Rule::InstanceDivergence => {
                "A slipstream A-instance program diverges from its R-instance: \
                 shared addresses or synchronization structure depend on the \
                 instance id. The A-stream may only elide work (DivergeInA), \
                 never change the shared skeleton — otherwise its prefetches \
                 and the kill/refork recovery are unsound."
            }
            Rule::LocksetRace => {
                "Eraser-style lockset violation: within one barrier phase, a \
                 shared address is accessed by multiple tasks (at least one \
                 writing, at least one access lock-protected) with no lock \
                 common to all of the phase's accesses. Unlike SC001 this is \
                 schedule-independent: no interleaving makes the locking \
                 discipline consistent."
            }
            Rule::LockOrderCycle => {
                "The acquired-while-holding relation contains a cycle (task A \
                 takes L1 then L2, task B takes L2 then L1). A potential \
                 deadlock that SC010's progress check only observes when the \
                 explored schedule actually wedges. Impose a global lock order."
            }
            Rule::PatternContract => {
                "A generated program does not match its declared PatternSpec \
                 contract — sharer counts, migration hops, false-sharing line \
                 co-residency, or sync structure drifted from what the spec \
                 promises. The generator and its contract checker are out of \
                 sync."
            }
            Rule::FalseSharing => {
                "Two or more tasks write distinct words of the same cache line. \
                 No word is actually shared, but the coherence protocol tracks \
                 ownership per line, so every write invalidates the other \
                 writers' copies and the line ping-pongs (the paper's \
                 false-sharing class, Figure 7 context). Pad or realign the data \
                 so each task's words live on their own lines."
            }
            Rule::ReadMostlyWrite => {
                "A read-mostly region (reads ≥ 4× writes, ≥ 2 reader tasks) is \
                 written during a phase in which other tasks are reading it. One \
                 such write invalidates every cached copy and forces a miss \
                 storm on the next reads. Hoist the write into its own phase or \
                 replicate the data."
            }
            Rule::ContendedMigratory => {
                "Three or more tasks read-modify-write the same line under a \
                 common lock. The data is migratory — the exclusive copy hops \
                 from owner to owner — and with this many contenders the lock \
                 serializes the whole chain. Consider partitioning the counter \
                 or batching updates locally."
            }
            Rule::SiHostile => {
                "A task re-reads a line that multiple tasks access, in a later \
                 barrier phase, with no write to the line in between. \
                 Self-invalidation (§4) drops shared copies at phase \
                 boundaries on the bet they are stale; here the copy was still \
                 valid, so SI converts a cache hit into a needless re-fetch. \
                 Expect slipstream+si to hurt this access pattern."
            }
            Rule::BroadcastOverflow => {
                "Under a limited-pointer directory, a written line has more \
                 accessor tasks than the directory has pointers. The sharer set \
                 overflows and every invalidation becomes a broadcast to all \
                 nodes. Expect invalidation traffic to scale with machine size, \
                 not sharer count (see the dir-scheme ablation)."
            }
            Rule::LoadImbalance => {
                "A barrier phase whose per-task static cost (compute cycles \
                 plus a per-access charge) is strongly imbalanced — the \
                 heaviest task costs at least twice the lightest, by a \
                 non-trivial absolute margin. The barrier makes every task wait \
                 for the slowest; the phase's speedup is capped by the heaviest \
                 task."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// One verifier finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error vs. warning.
    pub severity: Severity,
    /// Which rule fired.
    pub rule: Rule,
    /// Task index the finding anchors to, if any.
    pub task: Option<usize>,
    /// Zero-based index of the op within that task's program, if any.
    pub op_index: Option<u64>,
    /// Byte address involved, if any.
    pub addr: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// An `Error`-severity diagnostic.
    pub fn error(rule: Rule, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            rule,
            task: None,
            op_index: None,
            addr: None,
            message: message.into(),
        }
    }

    /// A `Warning`-severity diagnostic.
    pub fn warning(rule: Rule, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(rule, message) }
    }

    /// Attaches the task index.
    pub fn at_task(mut self, task: usize) -> Diagnostic {
        self.task = Some(task);
        self
    }

    /// Attaches the per-task op index.
    pub fn at_op(mut self, op_index: u64) -> Diagnostic {
        self.op_index = Some(op_index);
        self
    }

    /// Attaches the byte address.
    pub fn at_addr(mut self, addr: u64) -> Diagnostic {
        self.addr = Some(addr);
        self
    }

    /// Renders the diagnostic as one JSON object (hand-rolled, like the
    /// rest of the workspace: no external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"severity\":\"");
        s.push_str(&self.severity.to_string());
        s.push_str("\",\"rule\":\"");
        s.push_str(self.rule.id());
        s.push_str("\",\"name\":\"");
        s.push_str(self.rule.name());
        s.push('"');
        if let Some(t) = self.task {
            s.push_str(&format!(",\"task\":{t}"));
        }
        if let Some(i) = self.op_index {
            s.push_str(&format!(",\"op_index\":{i}"));
        }
        if let Some(a) = self.addr {
            s.push_str(&format!(",\"addr\":{a}"));
        }
        s.push_str(",\"message\":\"");
        s.push_str(&json_escape(&self.message));
        s.push_str("\"}");
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.rule)?;
        if let Some(t) = self.task {
            write!(f, " task {t}")?;
        }
        if let Some(i) = self.op_index {
            write!(f, " op {i}")?;
        }
        if let Some(a) = self.addr {
            write!(f, " addr {a:#x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// True when any diagnostic has `Error` severity (the `check` binary's
/// exit criterion).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json_round_trip_fields() {
        let d = Diagnostic::error(Rule::SharedRace, "t0 store vs t1 load")
            .at_task(1)
            .at_op(42)
            .at_addr(0x1040);
        let line = d.to_string();
        assert!(line.contains("SC001"));
        assert!(line.contains("task 1"));
        assert!(line.contains("op 42"));
        let json = d.to_json();
        assert!(json.contains("\"rule\":\"SC001\""));
        assert!(json.contains("\"task\":1"));
        assert!(json.contains("\"op_index\":42"));
        assert!(json.contains("\"addr\":4160"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn error_detection() {
        let w = Diagnostic::warning(Rule::UnbalancedEvents, "2 posts left");
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error(Rule::LeakedLock, "lock 3 held at end");
        assert!(has_errors(&[w, e]));
    }
}
