//! A-R synchronization tuning (§3.2/§3.4 of the paper): compare the four
//! token-bucket methods — one/zero-token, local/global — on two
//! benchmarks with opposite preferences, and show the time breakdown of
//! the R- and A-streams.
//!
//! ```sh
//! cargo run --release --example ar_sync_tuning
//! ```

use slipstream::workloads::{Cg, Mg};
use slipstream::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig, StreamRole, Workload};

fn sweep(w: &dyn Workload, nodes: u16) {
    println!("\n## {} ({} CMPs)", w.name(), nodes);
    println!(
        "{:<4} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "A-R", "cycles", "R-stall", "R-barrier", "A-arwait", "A-stall"
    );
    for ar in ArSyncMode::ALL {
        let spec =
            RunSpec::new(nodes, ExecMode::Slipstream).with_slip(SlipstreamConfig::prefetch_only(ar));
        let r = run(w, &spec);
        let rb = r.avg_breakdown(StreamRole::R);
        let ab = r.avg_breakdown(StreamRole::A);
        println!(
            "{:<4} {:>12} {:>10} {:>10} {:>10} {:>10}",
            ar.label(),
            r.exec_cycles,
            rb.mem_stall,
            rb.barrier,
            ab.ar_sync,
            ab.mem_stall
        );
    }
    // §6 future work: sample all four methods at run time, keep the best.
    let r = run(
        w,
        &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(SlipstreamConfig::adaptive()),
    );
    println!("{:<4} {:>12}   (dynamic selection, §6)", "ADPT", r.exec_cycles);
}

fn main() {
    println!("A-R synchronization methods (paper Figure 3 / Figure 5):");
    println!("  L1 = one-token local   (loosest: A runs furthest ahead)");
    println!("  L0 = zero-token local");
    println!("  G1 = one-token global");
    println!("  G0 = zero-token global (tightest: best for producer-consumer)");
    sweep(&Mg::quick(), 4);
    sweep(&Cg::quick(), 4);
    println!(
        "\nThere is no consistent winner (§3.4): tight sync avoids premature\n\
         prefetches, loose sync hides more latency — application dependent."
    );
}
