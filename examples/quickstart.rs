//! Quickstart: run one benchmark under all three execution modes and
//! print the paper's headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slipstream::workloads::Sor;
use slipstream::{run, ExecMode, RunSpec};

fn main() {
    let nodes = 4;
    let sor = Sor::quick();
    println!("SOR ({} CMP nodes, reduced size)\n", nodes);
    println!("{:<12} {:>12} {:>10}", "mode", "cycles", "vs single");

    let single = run(&sor, &RunSpec::new(nodes, ExecMode::Single));
    println!("{:<12} {:>12} {:>9.3}x", "single", single.exec_cycles, 1.0);

    let double = run(&sor, &RunSpec::new(nodes, ExecMode::Double));
    println!(
        "{:<12} {:>12} {:>9.3}x",
        "double",
        double.exec_cycles,
        double.speedup_over(&single)
    );

    let slip = run(&sor, &RunSpec::new(nodes, ExecMode::Slipstream));
    println!(
        "{:<12} {:>12} {:>9.3}x",
        "slipstream",
        slip.exec_cycles,
        slip.speedup_over(&single)
    );

    println!(
        "\nslipstream memory-request classification (Figure 7 style):\n\
         reads: A-Timely {:.1}%  A-Late {:.1}%  A-Only {:.1}%",
        slip.mem.class.reads.percentages()[0],
        slip.mem.class.reads.percentages()[1],
        slip.mem.class.reads.percentages()[2],
    );
}
