//! Bring your own kernel: implement [`Workload`] with the program DSL and
//! see whether slipstream mode helps it.
//!
//! The kernel below is a pipelined producer-consumer chain: task t writes
//! a block, posts an event to task t+1, which consumes it — a pattern
//! where the A-stream's run-ahead can hide the consumer's coherence
//! misses.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use slipstream::prog::{ArrayRef, BarrierId, EventId, Layout, Op, ProgBuilder};
use slipstream::{run, ExecMode, RunSpec, TaskBuilderFn, Workload};

/// A ring pipeline: each stage transforms its predecessor's block.
struct RingPipeline {
    /// Lines per stage block.
    lines: u64,
    /// Pipeline rounds.
    rounds: u64,
    /// Compute cycles per line.
    comp: u32,
}

impl Workload for RingPipeline {
    fn name(&self) -> &str {
        "ring-pipeline"
    }

    fn instantiate(&self, ntasks: usize, layout: &mut Layout) -> TaskBuilderFn {
        let lines = self.lines;
        let blocks: Vec<ArrayRef> = (0..ntasks)
            .map(|t| layout.shared_owned(&format!("stage{t}"), lines * 64, t))
            .collect();
        let rounds = self.rounds;
        let comp = self.comp;
        Box::new(move |_layout, _inst, task| {
            let prev = blocks[(task + ntasks - 1) % ntasks];
            let mine = blocks[task];
            let my_event = EventId(task as u32);
            let next_event = EventId(((task + 1) % ntasks) as u32);
            let mut b = ProgBuilder::new();
            b.for_n(rounds, move |b| {
                // Wait for the upstream stage's block (task 0's first wait
                // is satisfied by the bootstrap post below).
                if task != 0 {
                    b.wait(my_event);
                }
                b.block(move |_, out| {
                    for l in 0..lines {
                        out.push(Op::load_shared(slipstream::kernel::Addr(prev.base().0 + l * 64)));
                        out.push(Op::Compute(comp));
                        out.push(Op::store_shared(slipstream::kernel::Addr(mine.base().0 + l * 64)));
                    }
                });
                b.post(next_event);
                b.barrier(BarrierId(0));
            });
            b.build("ring-stage")
        })
    }
}

fn main() {
    let w = RingPipeline { lines: 256, rounds: 6, comp: 12 };
    let nodes = 4;
    let single = run(&w, &RunSpec::new(nodes, ExecMode::Single));
    let slip = run(&w, &RunSpec::new(nodes, ExecMode::Slipstream));
    println!("ring-pipeline on {nodes} CMPs:");
    println!("  single:     {:>10} cycles", single.exec_cycles);
    println!(
        "  slipstream: {:>10} cycles ({:+.1}%)",
        slip.exec_cycles,
        100.0 * (single.exec_cycles as f64 / slip.exec_cycles as f64 - 1.0)
    );
    println!(
        "  A-stream prefetches: {} timely, {} late, {} wasted",
        slip.mem.class.reads.a_timely, slip.mem.class.reads.a_late, slip.mem.class.reads.a_only
    );
}
