//! Transparent loads and self-invalidation (§4 of the paper): run
//! Water-NS — the suite's migratory-sharing benchmark — with the three
//! slipstream configurations of Figure 10 and show the §4 statistics.
//!
//! ```sh
//! cargo run --release --example self_invalidation
//! ```

use slipstream::workloads::WaterNs;
use slipstream::{run, ArSyncMode, ExecMode, RunSpec, SlipstreamConfig};

fn main() {
    let nodes = 4;
    let w = WaterNs::quick();
    let ar = ArSyncMode::OneTokenGlobal;
    println!("WATER-NS ({nodes} CMPs, reduced size), one-token global A-R sync\n");

    let pf = run(&w, &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(
        SlipstreamConfig::prefetch_only(ar),
    ));
    let tl = run(&w, &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(
        SlipstreamConfig::with_transparent(ar),
    ));
    let si = run(&w, &RunSpec::new(nodes, ExecMode::Slipstream).with_slip(
        SlipstreamConfig::with_self_invalidation(ar),
    ));

    println!("{:<28} {:>12}", "configuration", "cycles");
    println!("{:<28} {:>12}", "prefetching only", pf.exec_cycles);
    println!("{:<28} {:>12}", "+ transparent loads", tl.exec_cycles);
    println!("{:<28} {:>12}", "+ self-invalidation", si.exec_cycles);

    println!(
        "\ntransparent loads (Figure 9 style): {:.1}% of A-stream reads issued\n\
         transparently; {:.1}% of those answered with a stale memory copy,\n\
         the rest upgraded to normal loads at the directory",
        si.mem.transparent_pct(),
        si.mem.transparent_reply_pct()
    );
    println!(
        "\nself-invalidation: {} hints delivered, {} lines invalidated\n\
         (migratory: written in critical sections), {} written back and\n\
         downgraded (producer-consumer)",
        si.mem.si_hints, si.mem.si_invalidations, si.mem.si_downgrades
    );
}
